package node

import (
	"fmt"
	"sync/atomic"

	"hirep/internal/wire"
)

// Stats are the live node's operational counters, for monitoring a deployed
// node (printed by `hirepnode` on shutdown, scraped by tests).
type Stats struct {
	FramesIn        int64 // frames accepted from the listener
	FramesBad       int64 // inbound failures: FramesReadErr + FramesDecodeErr
	FramesReadErr   int64 // transport-level read failures (resets, timeouts)
	FramesDecodeErr int64 // frames rejected as malformed (oversized, torn)
	SessionsShed    int64 // inbound connections refused at the session cap
	OnionsForwarded int64 // relay duty: peeled and passed on
	OnionsExited    int64 // onion payloads consumed at this node
	OnionsRejected  int64 // blobs we could not peel (not ours / corrupt)
	TrustServed     int64 // trust requests answered as an agent
	ReportsStored   int64 // reports accepted into the agent store
	WalksAnswered   int64 // agent-list walks answered
	ReportsDeferred int64 // reports queued in the outbox instead of sent
	ReportsLost     int64 // reports dropped (outbox eviction or corruption)

	// Batched ingest, agent side (DESIGN.md §11). Rejects are counted by
	// reason on both the batched and the legacy single-report path; store
	// failures are transient and never conflated with protocol rejects.
	ReportBatches           int64 // report batches run through the verification pool
	IngestRejectedReplay    int64 // reports rejected: nonce already observed
	IngestRejectedKey       int64 // reports rejected: unknown reporter or bad signature
	IngestRejectedMalformed int64 // reports rejected: undecodable report wire
	IngestStoreFailed       int64 // reports verified but not stored (retryable)
	IngestShed              int64 // reports shed by admission control (retryable)

	// Batched ingest, sender side: per-report ack reconciliation. Together
	// with ReportsDeferred these account for every report handed to
	// ReportBatchOrDefer — acked + rejected + deferred add up.
	ReportsAcked    int64 // reports acknowledged as stored by the agent
	ReportsRejected int64 // reports the agent's ack rejected permanently
	ReplBatches     int64 // committed store batches tapped for replication
	ReplShipped     int64 // batches delivered to and acknowledged by replicas
	ReplApplied     int64 // shipped batches applied as a replica
	ReplRepairs     int64 // anti-entropy rounds completed as a primary
	ReplPulled      int64 // shards pulled from surviving replicas at promotion

	// Routed overlay (DESIGN.md §12): placement-map lifecycle, wrong-owner
	// routing traffic, and shard-handoff progress during rebalances.
	PlacementAdopted         int64 // signed placement maps adopted
	PlacementRejected        int64 // placement maps rejected (signature, authority, stale epoch)
	PlacementRedirects       int64 // wrong-owner answers served or received
	IngestRejectedWrongOwner int64 // reports rejected: subject outside this group's shards
	ShardsSealed             int64 // shards sealed against writes for a handoff
	ShardsPulled             int64 // shards pulled and merged during a rebalance

	// Sybil-admission gate (DESIGN.md §13). Agent side: reports bounced
	// pending admission, identities admitted, spent-solution replays, and
	// rate-accounting revocations. Sender side: proofs of work minted and
	// the total hash attempts they cost — the campaign harness's
	// attacker-cost unit.
	AdmissionRequired  int64 // reports bounced with StatusAdmissionRequired
	AdmissionAdmitted  int64 // identities admitted on a valid solution
	AdmissionReplayed  int64 // batches rejected: solution already spent
	AdmissionThrottled int64 // admissions revoked by per-identity rate accounting
	AdmissionSolved    int64 // admission proofs this node minted as a sender
	AdmissionWork      int64 // hash attempts spent minting those proofs

	// Verifiable reads (DESIGN.md §14). Served counts proof payloads
	// answered (agent assembly or edge cache); Verified/Partial/Lying are
	// client-side verdicts on bundles this node fetched and checked; the
	// cache counters track the proof payload cache on agents and edges.
	ProofsServed     int64 // proof bundles/snapshots served (agent or edge)
	ProofsVerified   int64 // bundles fetched and verified by this node
	ProofsPartial    int64 // verified bundles carrying declared-incomplete evidence
	ProofsLying      int64 // verified bundles proving their agent lied
	ProofCacheHits   int64 // proof payloads served straight from cache
	ProofCacheMisses int64 // proof requests that had to assemble or forward

	// Self-healing trust plane (DESIGN.md §15). Sweep/probe/failure counters
	// track the background auditor; advisory counters split gossip intake
	// into accepted (verified end to end), rejected (failed any check — never
	// acted on), and duplicate; the lifecycle counters record book actions
	// taken on verified evidence.
	AuditSweeps          int64 // audit sweeps completed
	AuditProbes          int64 // per-agent audit fetches attempted (incl. probation)
	AuditFailures        int64 // audits abandoned without a verdict (timeout, Partial, unreachable)
	AuditDiverged        int64 // cross-checks where two agents' bundles disagreed
	AdvisoriesIssued     int64 // advisories this node signed and gossiped
	AdvisoriesAccepted   int64 // received advisories that passed full re-verification
	AdvisoriesRejected   int64 // received advisories rejected (malformed, unsigned, unproven)
	AdvisoriesDuplicate  int64 // received advisories already processed (gossip dedup)
	AgentsQuarantined    int64 // agents moved to quarantine on verified evidence
	AgentsRehabilitated  int64 // suspects cleared by a Matching re-audit
	AgentsEvicted        int64 // agents evicted (second strike of verified evidence)
	SlanderSuspectsFound int64 // slander-suspect reporters flagged by skew scans
}

// String renders the counters compactly.
func (s Stats) String() string {
	return fmt.Sprintf("frames=%d bad=%d(read=%d decode=%d) shed=%d fwd=%d exit=%d rejected=%d served=%d reports=%d walks=%d deferred=%d lost=%d ingest(batches=%d replay=%d key=%d malformed=%d storefail=%d shed=%d wrongowner=%d) acks(stored=%d rejected=%d) repl(batches=%d shipped=%d applied=%d repairs=%d pulled=%d) overlay(adopted=%d rejected=%d redirects=%d sealed=%d pulled=%d) admission(required=%d admitted=%d replayed=%d throttled=%d solved=%d work=%d) proof(served=%d verified=%d partial=%d lying=%d cachehit=%d cachemiss=%d) audit(sweeps=%d probes=%d failures=%d diverged=%d issued=%d accepted=%d rejected=%d dup=%d quarantined=%d rehabbed=%d evicted=%d slander=%d)",
		s.FramesIn, s.FramesBad, s.FramesReadErr, s.FramesDecodeErr,
		s.SessionsShed, s.OnionsForwarded, s.OnionsExited,
		s.OnionsRejected, s.TrustServed, s.ReportsStored, s.WalksAnswered,
		s.ReportsDeferred, s.ReportsLost,
		s.ReportBatches, s.IngestRejectedReplay, s.IngestRejectedKey,
		s.IngestRejectedMalformed, s.IngestStoreFailed, s.IngestShed,
		s.IngestRejectedWrongOwner,
		s.ReportsAcked, s.ReportsRejected,
		s.ReplBatches, s.ReplShipped, s.ReplApplied, s.ReplRepairs, s.ReplPulled,
		s.PlacementAdopted, s.PlacementRejected, s.PlacementRedirects,
		s.ShardsSealed, s.ShardsPulled,
		s.AdmissionRequired, s.AdmissionAdmitted, s.AdmissionReplayed,
		s.AdmissionThrottled, s.AdmissionSolved, s.AdmissionWork,
		s.ProofsServed, s.ProofsVerified, s.ProofsPartial, s.ProofsLying,
		s.ProofCacheHits, s.ProofCacheMisses,
		s.AuditSweeps, s.AuditProbes, s.AuditFailures, s.AuditDiverged,
		s.AdvisoriesIssued, s.AdvisoriesAccepted, s.AdvisoriesRejected,
		s.AdvisoriesDuplicate, s.AgentsQuarantined, s.AgentsRehabilitated,
		s.AgentsEvicted, s.SlanderSuspectsFound)
}

// nodeStats is the atomic backing store.
type nodeStats struct {
	framesIn, framesReadErr, framesDecodeErr     atomic.Int64
	sessionsShed                                 atomic.Int64
	onionsForwarded, onionsExited, onionsRejcted atomic.Int64
	trustServed, reportsStored, walksAnswered    atomic.Int64
	reportsDeferred, reportsLost                 atomic.Int64
	replBatches, replShipped, replApplied        atomic.Int64
	replRepairs, replPulled                      atomic.Int64

	reportBatches                              atomic.Int64
	ingestRejectedReplay, ingestRejectedKey    atomic.Int64
	ingestRejectedMalformed, ingestStoreFailed atomic.Int64
	ingestShed, reportsAcked, reportsRejected  atomic.Int64

	placementAdopted, placementRejected atomic.Int64
	placementRedirects                  atomic.Int64
	ingestRejectedWrongOwner            atomic.Int64
	shardsSealed, shardsPulled          atomic.Int64

	admissionRequired, admissionAdmitted  atomic.Int64
	admissionReplayed, admissionThrottled atomic.Int64
	admissionSolved, admissionWork        atomic.Int64

	proofsServed, proofsVerified     atomic.Int64
	proofsPartial, proofsLying       atomic.Int64
	proofCacheHits, proofCacheMisses atomic.Int64

	auditSweeps, auditProbes                atomic.Int64
	auditFailures, auditDiverged            atomic.Int64
	advisoriesIssued, advisoriesAccepted    atomic.Int64
	advisoriesRejected, advisoriesDuplicate atomic.Int64
	agentsQuarantined, agentsRehabilitated  atomic.Int64
	agentsEvicted, slanderSuspectsFound     atomic.Int64
}

// Stats returns a snapshot of the node's counters. Taking a snapshot also
// refreshes the store-health gauges so a shutdown dump sees current values.
func (n *Node) Stats() Stats {
	n.updateStoreHealth()
	readErr := n.stats.framesReadErr.Load()
	decodeErr := n.stats.framesDecodeErr.Load()
	return Stats{
		FramesIn:                n.stats.framesIn.Load(),
		FramesBad:               readErr + decodeErr,
		FramesReadErr:           readErr,
		FramesDecodeErr:         decodeErr,
		SessionsShed:            n.stats.sessionsShed.Load(),
		OnionsForwarded:         n.stats.onionsForwarded.Load(),
		OnionsExited:            n.stats.onionsExited.Load(),
		OnionsRejected:          n.stats.onionsRejcted.Load(),
		TrustServed:             n.stats.trustServed.Load(),
		ReportsStored:           n.stats.reportsStored.Load(),
		WalksAnswered:           n.stats.walksAnswered.Load(),
		ReportsDeferred:         n.stats.reportsDeferred.Load(),
		ReportsLost:             n.stats.reportsLost.Load(),
		ReportBatches:           n.stats.reportBatches.Load(),
		IngestRejectedReplay:    n.stats.ingestRejectedReplay.Load(),
		IngestRejectedKey:       n.stats.ingestRejectedKey.Load(),
		IngestRejectedMalformed: n.stats.ingestRejectedMalformed.Load(),
		IngestStoreFailed:       n.stats.ingestStoreFailed.Load(),
		IngestShed:              n.stats.ingestShed.Load(),
		ReportsAcked:            n.stats.reportsAcked.Load(),
		ReportsRejected:         n.stats.reportsRejected.Load(),
		ReplBatches:             n.stats.replBatches.Load(),
		ReplShipped:             n.stats.replShipped.Load(),
		ReplApplied:             n.stats.replApplied.Load(),
		ReplRepairs:             n.stats.replRepairs.Load(),
		ReplPulled:              n.stats.replPulled.Load(),

		PlacementAdopted:         n.stats.placementAdopted.Load(),
		PlacementRejected:        n.stats.placementRejected.Load(),
		PlacementRedirects:       n.stats.placementRedirects.Load(),
		IngestRejectedWrongOwner: n.stats.ingestRejectedWrongOwner.Load(),
		ShardsSealed:             n.stats.shardsSealed.Load(),
		ShardsPulled:             n.stats.shardsPulled.Load(),

		AdmissionRequired:  n.stats.admissionRequired.Load(),
		AdmissionAdmitted:  n.stats.admissionAdmitted.Load(),
		AdmissionReplayed:  n.stats.admissionReplayed.Load(),
		AdmissionThrottled: n.stats.admissionThrottled.Load(),
		AdmissionSolved:    n.stats.admissionSolved.Load(),
		AdmissionWork:      n.stats.admissionWork.Load(),

		ProofsServed:     n.stats.proofsServed.Load(),
		ProofsVerified:   n.stats.proofsVerified.Load(),
		ProofsPartial:    n.stats.proofsPartial.Load(),
		ProofsLying:      n.stats.proofsLying.Load(),
		ProofCacheHits:   n.stats.proofCacheHits.Load(),
		ProofCacheMisses: n.stats.proofCacheMisses.Load(),

		AuditSweeps:          n.stats.auditSweeps.Load(),
		AuditProbes:          n.stats.auditProbes.Load(),
		AuditFailures:        n.stats.auditFailures.Load(),
		AuditDiverged:        n.stats.auditDiverged.Load(),
		AdvisoriesIssued:     n.stats.advisoriesIssued.Load(),
		AdvisoriesAccepted:   n.stats.advisoriesAccepted.Load(),
		AdvisoriesRejected:   n.stats.advisoriesRejected.Load(),
		AdvisoriesDuplicate:  n.stats.advisoriesDuplicate.Load(),
		AgentsQuarantined:    n.stats.agentsQuarantined.Load(),
		AgentsRehabilitated:  n.stats.agentsRehabilitated.Load(),
		AgentsEvicted:        n.stats.agentsEvicted.Load(),
		SlanderSuspectsFound: n.stats.slanderSuspectsFound.Load(),
	}
}

// countFrame counts one accepted inbound frame, per message type.
func (n *Node) countFrame(typ wire.MsgType) {
	n.stats.framesIn.Add(1)
	if int(typ) < len(n.frameCnt) && n.frameCnt[typ] != nil {
		n.frameCnt[typ].Inc()
	} else {
		n.frameUnknown.Inc()
	}
}

// countReadError counts an inbound transport-level read failure.
func (n *Node) countReadError() {
	n.stats.framesReadErr.Add(1)
	n.frameReadErr.Inc()
}

// countDecodeError counts an inbound frame rejected as malformed.
func (n *Node) countDecodeError() {
	n.stats.framesDecodeErr.Add(1)
	n.frameDecodeErr.Inc()
}
