package node

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"hirep/internal/pkc"
)

// TestFullFleetLifecycle is the capstone live integration test: a 12-node
// mesh (3 agents, 9 peers/relays) runs the complete autonomous protocol —
// agents publish onions, peers discover them over the overlay, build
// trusted-agent books, exchange onion-routed trust traffic, file signed
// reports, and converge on a subject's reputation — with no out-of-band
// state whatsoever.
func TestFullFleetLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("live fleet test")
	}
	const n = 12
	agentIdx := map[int]bool{0: true, 1: true, 2: true}
	nodes := make([]*Node, n)
	for i := range nodes {
		nd, err := Listen("127.0.0.1:0", Options{Agent: agentIdx[i], Timeout: 4 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = nd.Close() })
		nodes[i] = nd
	}
	// Mesh overlay: node i links to i±1 and i±3 (mod n) — diameter ~3.
	for i, nd := range nodes {
		nbs := []string{
			nodes[(i+1)%n].Addr(),
			nodes[(i+n-1)%n].Addr(),
			nodes[(i+3)%n].Addr(),
			nodes[(i+n-3)%n].Addr(),
		}
		nd.SetNeighbors(nbs)
	}

	// Agents publish through two relay hops each.
	for i := 0; i < 3; i++ {
		relays := []string{nodes[3+i].Addr(), nodes[6+i].Addr()}
		if _, err := nodes[i].PublishDescriptor(relays); err != nil {
			t.Fatalf("agent %d publish: %v", i, err)
		}
	}

	// Two independent peers bootstrap entirely over the network.
	requestor, reporter := nodes[9], nodes[10]
	books := make(map[*Node]*AgentBook)
	for _, p := range []*Node{requestor, reporter} {
		infos, err := p.DiscoverAgents(12, 4, 1200*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		book, err := NewAgentBook(10, 0.3, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		for _, info := range infos {
			book.Add(info)
		}
		if book.Len() < 2 {
			t.Fatalf("peer discovered only %d agents", book.Len())
		}
		books[p] = book
	}

	// The reporter transacts with a provider and tells its agents.
	provider, err := pkc.NewIdentity(nil)
	if err != nil {
		t.Fatal(err)
	}
	repOnion, err := reporter.BuildOnion(fetchRoute(t, reporter, []*Node{nodes[4], nodes[7]}))
	if err != nil {
		t.Fatal(err)
	}
	// Introduce (registers the key at every agent), then report twice.
	if _, _, err := reporter.EvaluateSubject(books[reporter], provider.ID, repOnion); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for _, a := range books[reporter].Agents() {
			if err := reporter.ReportTransaction(a, provider.ID, true); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFor(t, func() bool {
		total := 0
		for i := 0; i < 3; i++ {
			total += nodes[i].Agent().ReportCount()
		}
		return total >= 2*books[reporter].Len()
	})

	// The requestor — who has never spoken to the reporter — now learns the
	// provider's reputation through the shared agents.
	reqOnion, err := requestor.BuildOnion(fetchRoute(t, requestor, []*Node{nodes[5], nodes[8]}))
	if err != nil {
		t.Fatal(err)
	}
	v, perAgent, err := requestor.EvaluateSubject(books[requestor], provider.ID, reqOnion)
	if err != nil {
		t.Fatal(err)
	}
	if len(perAgent) < 2 {
		t.Fatalf("only %d agents answered the requestor", len(perAgent))
	}
	// At least one shared agent holds the reporter's positive evidence, so
	// the aggregate must lean positive (> 0.5 uninformed prior).
	if v <= 0.5 {
		t.Fatalf("reputation did not propagate: aggregate %v", v)
	}
	// Complete the transaction loop.
	removed := requestor.CompleteTransaction(books[requestor], provider.ID, true, perAgent)
	if len(removed) != 0 {
		t.Fatalf("consistent agents were removed: %v", removed)
	}
}

// TestAgentRestartRecoversStore kills the agent mid-run and reopens a node
// against the same store directory: queried trust values and report counts
// must survive. The "kill" is honest — the store directory is cloned
// byte-for-byte BEFORE the graceful close, so the reopened agent sees only
// what the WAL's group commit had made durable, not a shutdown snapshot.
func TestAgentRestartRecoversStore(t *testing.T) {
	storeDir := filepath.Join(t.TempDir(), "agent-store")
	agentNode, err := Listen("127.0.0.1:0", Options{Agent: true, Timeout: 4 * time.Second, StoreDir: storeDir})
	if err != nil {
		t.Fatal(err)
	}
	plain := fleet(t, 2, 0)
	peer, relay := plain[0], plain[1]

	agentOnion, err := agentNode.BuildOnion(fetchRoute(t, agentNode, []*Node{relay}))
	if err != nil {
		t.Fatal(err)
	}
	info := agentNode.Info(agentOnion)
	subject, err := pkc.NewIdentity(nil)
	if err != nil {
		t.Fatal(err)
	}
	peerOnion, err := peer.BuildOnion(fetchRoute(t, peer, []*Node{relay}))
	if err != nil {
		t.Fatal(err)
	}
	// Introduce the peer (registers its key), then file 4 positive and 1
	// negative report.
	if _, _, err := peer.RequestTrust(info, subject.ID, peerOnion); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := peer.ReportTransaction(info, subject.ID, i != 0); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return agentNode.Agent().ReportCount() == 5 })
	wantTrust, ok := agentNode.Agent().TrustValue(subject.ID)
	if !ok {
		t.Fatal("agent has no opinion before the kill")
	}

	// Kill: clone the store dir as-is (ReportCount is only visible after the
	// WAL batch landed, so the clone must contain all 5 reports), then shut
	// the old process down.
	crashDir := filepath.Join(t.TempDir(), "recovered-store")
	if err := os.MkdirAll(crashDir, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(storeDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crashDir, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := agentNode.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen against the crash image. The node has a fresh identity — state
	// is keyed by subject, not by the agent — and must serve the recovered
	// values, both directly and over the live protocol.
	revived, err := Listen("127.0.0.1:0", Options{Agent: true, Timeout: 4 * time.Second, StoreDir: crashDir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = revived.Close() })
	if got := revived.Agent().ReportCount(); got != 5 {
		t.Fatalf("recovered ReportCount = %d, want 5", got)
	}
	got, ok := revived.Agent().TrustValue(subject.ID)
	if !ok || got != wantTrust {
		t.Fatalf("recovered trust = %v (ok=%v), want %v", got, ok, wantTrust)
	}
	revivedOnion, err := revived.BuildOnion(fetchRoute(t, revived, []*Node{relay}))
	if err != nil {
		t.Fatal(err)
	}
	peerOnion2, err := peer.BuildOnion(fetchRoute(t, peer, []*Node{relay}))
	if err != nil {
		t.Fatal(err)
	}
	v, hasData, err := peer.RequestTrust(revived.Info(revivedOnion), subject.ID, peerOnion2)
	if err != nil {
		t.Fatal(err)
	}
	if !hasData || v != wantTrust {
		t.Fatalf("live query after restart = %v (hasData=%v), want %v", v, hasData, wantTrust)
	}
	// And the revived agent keeps accepting new reports on top of the
	// recovered state.
	if err := peer.ReportTransaction(revived.Info(revivedOnion), subject.ID, true); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return revived.Agent().ReportCount() == 6 })
}

// TestStatsCounters checks the observability counters across a simple
// exchange.
func TestStatsCounters(t *testing.T) {
	nodes := fleet(t, 3, 1)
	agentNode, peer, relay := nodes[0], nodes[1], nodes[2]
	agentOnion, err := agentNode.BuildOnion(fetchRoute(t, agentNode, []*Node{relay}))
	if err != nil {
		t.Fatal(err)
	}
	info := agentNode.Info(agentOnion)
	subject, _ := pkc.NewIdentity(nil)
	peerOnion, err := peer.BuildOnion(fetchRoute(t, peer, []*Node{relay}))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := peer.RequestTrust(info, subject.ID, peerOnion); err != nil {
		t.Fatal(err)
	}
	if err := peer.ReportTransaction(info, subject.ID, true); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return agentNode.Stats().ReportsStored == 1 })

	rs := relay.Stats()
	if rs.OnionsForwarded < 2 {
		t.Fatalf("relay forwarded %d onions, expected >= 2 (req + resp)", rs.OnionsForwarded)
	}
	if rs.OnionsExited != 0 {
		t.Fatal("relay consumed onion payloads addressed elsewhere")
	}
	as := agentNode.Stats()
	if as.TrustServed != 1 {
		t.Fatalf("agent served %d trust requests", as.TrustServed)
	}
	if as.OnionsExited < 2 {
		t.Fatalf("agent exits %d", as.OnionsExited)
	}
	ps := peer.Stats()
	if ps.OnionsExited != 1 { // the trust response
		t.Fatalf("peer exits %d", ps.OnionsExited)
	}
	if ps.FramesIn == 0 {
		t.Fatal("no frames counted")
	}
	if s := ps.String(); s == "" {
		t.Fatal("empty stats string")
	}
}
