package node

import (
	"testing"
	"time"

	"hirep/internal/pkc"
)

// chainNeighbors wires nodes into a line: n0 - n1 - n2 - ...
func chainNeighbors(nodes []*Node) {
	for i, nd := range nodes {
		var nbs []string
		if i > 0 {
			nbs = append(nbs, nodes[i-1].Addr())
		}
		if i < len(nodes)-1 {
			nbs = append(nbs, nodes[i+1].Addr())
		}
		nd.SetNeighbors(nbs)
	}
}

func TestPublishDescriptorRequiresAgent(t *testing.T) {
	nodes := fleet(t, 2, 0)
	if _, err := nodes[0].PublishDescriptor([]string{nodes[1].Addr()}); err != ErrNotAgent {
		t.Fatalf("non-agent published: %v", err)
	}
}

func TestPublishDescriptorRoundTrip(t *testing.T) {
	nodes := fleet(t, 2, 1)
	desc, err := nodes[0].PublishDescriptor([]string{nodes[1].Addr()})
	if err != nil {
		t.Fatal(err)
	}
	info, err := DecodeInfo(desc)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID() != nodes[0].ID() {
		t.Fatal("published descriptor identity mismatch")
	}
}

func TestDiscoverAgentsOverChain(t *testing.T) {
	// Line of 6 nodes; agents at positions 2 and 4 publish; node 0 walks.
	nodes := fleet(t, 6, 0)
	// Rebuild with agents at 2 and 4: easier to make a fresh fleet with the
	// agent flag in the right places.
	agents := map[int]bool{2: true, 4: true}
	fresh := make([]*Node, 6)
	for i := range fresh {
		nd, err := Listen("127.0.0.1:0", Options{Agent: agents[i], Timeout: 3 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = nd.Close() })
		fresh[i] = nd
	}
	_ = nodes
	chainNeighbors(fresh)
	// Agents publish through their line neighbors as relays.
	if _, err := fresh[2].PublishDescriptor([]string{fresh[1].Addr()}); err != nil {
		t.Fatal(err)
	}
	if _, err := fresh[4].PublishDescriptor([]string{fresh[5].Addr()}); err != nil {
		t.Fatal(err)
	}
	infos, err := fresh[0].DiscoverAgents(8, 6, 900*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, info := range infos {
		found[info.ID().String()] = true
	}
	if !found[fresh[2].ID().String()] {
		t.Fatalf("agent at hop 2 not discovered (found %d)", len(infos))
	}
	if !found[fresh[4].ID().String()] {
		t.Fatalf("agent at hop 4 not discovered (found %d)", len(infos))
	}
}

func TestDiscoverAgentsTTLBound(t *testing.T) {
	agents := map[int]bool{4: true}
	fresh := make([]*Node, 5)
	for i := range fresh {
		nd, err := Listen("127.0.0.1:0", Options{Agent: agents[i], Timeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = nd.Close() })
		fresh[i] = nd
	}
	chainNeighbors(fresh)
	if _, err := fresh[4].PublishDescriptor([]string{fresh[3].Addr()}); err != nil {
		t.Fatal(err)
	}
	// TTL 2 cannot reach the agent 4 hops away.
	infos, err := fresh[0].DiscoverAgents(8, 2, 600*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("TTL-2 walk found %d agents 4 hops away", len(infos))
	}
}

func TestDiscoverAgentsValidation(t *testing.T) {
	nodes := fleet(t, 1, 0)
	if _, err := nodes[0].DiscoverAgents(8, 4, 100*time.Millisecond); err == nil {
		t.Fatal("walk without neighbors succeeded")
	}
	nodes[0].SetNeighbors([]string{"127.0.0.1:1"})
	if _, err := nodes[0].DiscoverAgents(0, 4, time.Millisecond); err == nil {
		t.Fatal("zero tokens accepted")
	}
}

func TestDiscoveryCachesDescriptors(t *testing.T) {
	// After a walk, the walker itself can answer future walks with what it
	// learned (recommendation propagation, §3.4.1).
	agents := map[int]bool{2: true}
	fresh := make([]*Node, 4)
	for i := range fresh {
		nd, err := Listen("127.0.0.1:0", Options{Agent: agents[i], Timeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = nd.Close() })
		fresh[i] = nd
	}
	chainNeighbors(fresh)
	if _, err := fresh[2].PublishDescriptor([]string{fresh[1].Addr()}); err != nil {
		t.Fatal(err)
	}
	// Node 1 walks and caches the agent.
	infos, err := fresh[1].DiscoverAgents(4, 3, 700*time.Millisecond)
	if err != nil || len(infos) == 0 {
		t.Fatalf("first walk: %v / %d agents", err, len(infos))
	}
	// Node 0 walks with TTL 1: only node 1 is reachable, which now knows the
	// agent from its cache.
	infos, err = fresh[0].DiscoverAgents(4, 1, 700*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) == 0 {
		t.Fatal("cached descriptor not propagated")
	}
	if infos[0].ID() != fresh[2].ID() {
		t.Fatal("wrong agent propagated")
	}
}

func TestDiscoveryIntoAgentBook(t *testing.T) {
	// The complete live bootstrap: discover agents, fill the book, transact.
	agents := map[int]bool{1: true, 3: true}
	fresh := make([]*Node, 5)
	for i := range fresh {
		nd, err := Listen("127.0.0.1:0", Options{Agent: agents[i], Timeout: 3 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = nd.Close() })
		fresh[i] = nd
	}
	chainNeighbors(fresh)
	if _, err := fresh[1].PublishDescriptor([]string{fresh[2].Addr()}); err != nil {
		t.Fatal(err)
	}
	if _, err := fresh[3].PublishDescriptor([]string{fresh[2].Addr()}); err != nil {
		t.Fatal(err)
	}
	peer := fresh[0]
	infos, err := peer.DiscoverAgents(8, 5, 900*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	book, _ := NewAgentBook(10, 0.3, 0.4)
	for _, info := range infos {
		book.Add(info)
	}
	if book.Len() < 2 {
		t.Fatalf("book has %d agents after discovery", book.Len())
	}
	replyOnion, err := peer.BuildOnion(fetchRoute(t, peer, fresh[2:3]))
	if err != nil {
		t.Fatal(err)
	}
	subject, _ := pkc.NewIdentity(nil)
	if _, perAgent, err := peer.EvaluateSubject(book, subject.ID, replyOnion); err != nil {
		t.Fatal(err)
	} else if len(perAgent) < 2 {
		t.Fatalf("only %d discovered agents answered", len(perAgent))
	}
}

func TestPing(t *testing.T) {
	nodes := fleet(t, 2, 0)
	if !nodes[0].Ping(nodes[1].Addr()) {
		t.Fatal("live node did not answer ping")
	}
	dead, err := Listen("127.0.0.1:0", Options{Timeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.Addr()
	_ = dead.Close()
	nodes[0].SetTimeout(500 * time.Millisecond)
	if nodes[0].Ping(addr) {
		t.Fatal("closed node answered ping")
	}
}
