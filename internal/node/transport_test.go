package node

import (
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"hirep/internal/resilience"
	"hirep/internal/transport"
	"hirep/internal/wire"
)

// TestConnFloodShedsSessions is the goroutine-exhaustion regression: with a
// small session cap, a flood of idle connections must be shed at accept
// (counted in Stats) instead of each pinning a handler goroutine, and the
// node must serve normally once the flood subsides.
func TestConnFloodShedsSessions(t *testing.T) {
	n, err := Listen("127.0.0.1:0", Options{Timeout: 2 * time.Second, MaxSessions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	before := runtime.NumGoroutine()
	const flood = 48
	conns := make([]net.Conn, 0, flood)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 0; i < flood; i++ {
		c, err := net.DialTimeout("tcp", n.Addr(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}

	// The accept loop processes the flood quickly: at most MaxSessions conns
	// get goroutines, the rest are closed and counted.
	deadline := time.Now().Add(2 * time.Second)
	for n.Stats().SessionsShed < flood-4 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	shed := n.Stats().SessionsShed
	if shed < flood-4 {
		t.Fatalf("sessions shed = %d, want >= %d", shed, flood-4)
	}
	if during := runtime.NumGoroutine(); during > before+4+16 {
		t.Fatalf("flood grew goroutines %d -> %d; cap is not bounding handlers", before, during)
	}
	if got := n.Metrics().Snapshot()["node_sessions_shed_total"]; got != shed {
		t.Fatalf("metrics shed counter %d != stats %d", got, shed)
	}

	// Release the flood; the node serves again once slots free up.
	for _, c := range conns {
		c.Close()
	}
	conns = nil
	peer, err := Listen("127.0.0.1:0", Options{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	deadline = time.Now().Add(3 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		if peer.Ping(n.Addr()) {
			recovered = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("node never recovered after the flood")
	}
}

// legacyNodeServer mimics the pre-transport accept loop at the node
// protocol level: one plain frame per connection, TPing echoed as TPong,
// unknown types (hellos included) silently dropped.
func legacyNodeServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				_ = c.SetDeadline(time.Now().Add(2 * time.Second))
				typ, payload, err := wire.ReadFrame(c)
				if err != nil || typ != wire.TPing {
					return
				}
				_ = wire.WriteFrame(c, wire.TPong, payload)
			}(c)
		}
	}()
	return ln.Addr().String()
}

// TestLegacyInterop pins both interop directions of the hello negotiation:
// a pooled node talking to a legacy one-shot peer falls back transparently,
// and a legacy one-shot client gets served by a pooled node's listener.
func TestLegacyInterop(t *testing.T) {
	n, err := Listen("127.0.0.1:0", Options{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	// Pooled node -> legacy peer: the hello is rejected by close, the
	// verdict is cached, and pings complete one-shot.
	legacyAddr := legacyNodeServer(t)
	for i := 0; i < 3; i++ {
		if !n.Ping(legacyAddr) {
			t.Fatalf("ping %d to legacy peer failed", i)
		}
	}
	if got := n.Metrics().Snapshot()["transport_legacy_frames_total"]; got == 0 {
		t.Fatal("pings to a legacy peer never took the legacy fallback")
	}

	// Legacy client -> pooled node: a one-shot exchange against the session
	// listener still gets the old single-frame semantics.
	dial := resilience.NetDialer("tcp")
	typ, resp, err := transport.DirectRoundTrip(dial, n.Addr(), wire.TPing, []byte("nonce"), 2*time.Second)
	if err != nil {
		t.Fatalf("legacy client against pooled node: %v", err)
	}
	if typ != wire.TPong || string(resp) != "nonce" {
		t.Fatalf("legacy client got (%v, %q)", typ, resp)
	}
}

// TestFrameAccounting verifies the per-type inbound counters and the
// read/decode error split that replaced the old countFrame(0, false) lump.
func TestFrameAccounting(t *testing.T) {
	n, err := Listen("127.0.0.1:0", Options{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	peer, err := Listen("127.0.0.1:0", Options{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	for i := 0; i < 3; i++ {
		if !peer.Ping(n.Addr()) {
			t.Fatalf("ping %d failed", i)
		}
	}
	snap := n.Metrics().Snapshot()
	if got := snap["node_frames_in_ping_total"]; got != 3 {
		t.Fatalf("per-type ping counter = %d, want 3", got)
	}
	if n.Stats().FramesIn < 3 {
		t.Fatalf("frames in = %d", n.Stats().FramesIn)
	}

	// A malformed frame (oversized length prefix) counts as a decode error,
	// not a transport read error.
	raw, err := net.DialTimeout("tcp", n.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x05}); err != nil {
		t.Fatal(err)
	}
	raw.Close()
	deadline := time.Now().Add(2 * time.Second)
	for n.Stats().FramesDecodeErr == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	st := n.Stats()
	if st.FramesDecodeErr != 1 {
		t.Fatalf("decode errors = %d, want 1 (stats %v)", st.FramesDecodeErr, st)
	}
	if st.FramesBad != st.FramesReadErr+st.FramesDecodeErr {
		t.Fatalf("FramesBad %d != read %d + decode %d", st.FramesBad, st.FramesReadErr, st.FramesDecodeErr)
	}
	if got := n.Metrics().Snapshot()["node_frames_decode_err_total"]; got != 1 {
		t.Fatalf("decode error metric = %d, want 1", got)
	}

	// A torn frame (connection cut mid-body) counts as a read error.
	raw2, err := net.DialTimeout("tcp", n.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw2.Write([]byte{0, 0, 0, 10, byte(wire.TPing), 1, 2}); err != nil {
		t.Fatal(err)
	}
	raw2.Close()
	deadline = time.Now().Add(2 * time.Second)
	for n.Stats().FramesReadErr == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := n.Stats().FramesReadErr; got != 1 {
		t.Fatalf("read errors = %d, want 1", got)
	}
}

// TestPooledNodesReuseConnections: protocol traffic between two live nodes
// must multiplex over the pool instead of dialing per frame.
func TestPooledNodesReuseConnections(t *testing.T) {
	var dials atomic.Int64
	countingDialer := func(addr string, timeout time.Duration) (net.Conn, error) {
		dials.Add(1)
		return net.DialTimeout("tcp", addr, timeout)
	}
	n, err := Listen("127.0.0.1:0", Options{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	peer, err := Listen("127.0.0.1:0", Options{Timeout: 2 * time.Second, Dialer: countingDialer})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	const pings = 20
	for i := 0; i < pings; i++ {
		if !peer.Ping(n.Addr()) {
			t.Fatalf("ping %d failed", i)
		}
	}
	if d := dials.Load(); d != 1 {
		t.Fatalf("%d pings used %d dials, want 1", pings, d)
	}
	snap := peer.Metrics().Snapshot()
	if got := snap["transport_dials_avoided_total"]; got != pings-1 {
		t.Fatalf("dials avoided = %d, want %d", got, pings-1)
	}
}
