package node

import (
	"testing"
	"time"

	"hirep/internal/agentdir"
	"hirep/internal/onion"
	"hirep/internal/pkc"
	"hirep/internal/wire"
)

// batchPair builds agent + peer + relay and returns the agent's published
// descriptor and the peer's reply onion, the standing fixture of every
// batched-ingest test.
func batchPair(t *testing.T, agentOpts Options) (agentNode, peer *Node, info AgentInfo, replyOnion *onion.Onion) {
	t.Helper()
	if agentOpts.Timeout <= 0 {
		agentOpts.Timeout = 5 * time.Second
	}
	agentOpts.Agent = true
	agentNode, err := Listen("127.0.0.1:0", agentOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agentNode.Close() })
	plain := fleet(t, 2, 0)
	peer, relay := plain[0], plain[1]
	ao, err := agentNode.BuildOnion(fetchRoute(t, agentNode, []*Node{relay}))
	if err != nil {
		t.Fatal(err)
	}
	po, err := peer.BuildOnion(fetchRoute(t, peer, []*Node{relay}))
	if err != nil {
		t.Fatal(err)
	}
	return agentNode, peer, agentNode.Info(ao), po
}

// TestReportBatchLive drives a full batch/ack exchange over real loopback
// TCP: every report must come back acknowledged as stored, land in the
// agent's store, and be counted on both sides.
func TestReportBatchLive(t *testing.T) {
	agentNode, peer, info, replyOnion := batchPair(t, Options{})
	subject, _ := pkc.NewIdentity(nil)
	const n = 50
	reports := make([]BatchReport, n)
	for i := range reports {
		reports[i] = BatchReport{Subject: subject.ID, Positive: i%2 == 0}
	}
	statuses, err := peer.ReportBatch(info, reports, replyOnion)
	if err != nil {
		t.Fatal(err)
	}
	if len(statuses) != n {
		t.Fatalf("ack carried %d statuses, want %d", len(statuses), n)
	}
	for i, st := range statuses {
		if st != StatusStored {
			t.Fatalf("report %d acked %v, want stored", i, st)
		}
	}
	if got := agentNode.Agent().ReportCount(); got != n {
		t.Fatalf("agent stored %d reports, want %d", got, n)
	}
	as := agentNode.Stats()
	if as.ReportsStored != n || as.ReportBatches != 1 {
		t.Fatalf("agent stats: stored=%d batches=%d, want %d/1", as.ReportsStored, as.ReportBatches, n)
	}
}

// TestReportBatchMixed hand-crafts a batch mixing a valid report, a
// replayed nonce, a signature under the wrong key, and a malformed wire —
// the valid report must still commit and every reject must come back named
// in the ack and counted by reason, none of them conflated with a store
// failure. This is the regression test for the silent-drop bug: before the
// ack pipeline, all three rejects would have vanished without a trace.
func TestReportBatchMixed(t *testing.T) {
	agentNode, peer, info, replyOnion := batchPair(t, Options{})
	subject, _ := pkc.NewIdentity(nil)
	stranger, _ := pkc.NewIdentity(nil)
	self := peer.identity()
	dup, _ := pkc.NewNonce(nil)
	fresh, _ := pkc.NewNonce(nil)
	strangerNonce, _ := pkc.NewNonce(nil)
	wires := [][]byte{
		agentdir.SignReport(self, subject.ID, true, fresh),             // valid
		agentdir.SignReport(self, subject.ID, true, dup),               // valid (first use of dup)
		agentdir.SignReport(self, subject.ID, false, dup),              // replay of dup
		agentdir.SignReport(stranger, subject.ID, true, strangerNonce), // signed by the wrong key
		[]byte("not a report"),                                         // malformed
	}
	want := []ReportStatus{StatusStored, StatusStored, StatusReplay, StatusBadKey, StatusMalformed}

	// Send the crafted batch through the real wire path and wait for its ack.
	nonce, _ := pkc.NewNonce(nil)
	sealed, err := pkc.Seal(info.AP, encodeReportBatch(self, nonce, replyOnion, wires, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan batchAck, 1)
	peer.mu.Lock()
	peer.pendingAcks[nonce] = &batchAckWait{sp: info.SP, count: len(wires), ch: ch}
	peer.mu.Unlock()
	if err := peer.sendThroughOnion(info.Onion, wire.TReportBatch, sealed); err != nil {
		t.Fatal(err)
	}
	var statuses []ReportStatus
	select {
	case ack := <-ch:
		statuses = ack.statuses
	case <-time.After(5 * time.Second):
		t.Fatal("no batch ack arrived")
	}
	for i, st := range statuses {
		if st != want[i] {
			t.Fatalf("report %d acked %v, want %v", i, st, want[i])
		}
	}
	// The two valid reports commit despite their rejected neighbors.
	if got := agentNode.Agent().ReportCount(); got != 2 {
		t.Fatalf("agent stored %d reports, want 2", got)
	}
	as := agentNode.Stats()
	if as.ReportsStored != 2 {
		t.Fatalf("ReportsStored = %d, want 2", as.ReportsStored)
	}
	if as.IngestRejectedReplay != 1 || as.IngestRejectedKey != 1 || as.IngestRejectedMalformed != 1 {
		t.Fatalf("reject counters replay=%d key=%d malformed=%d, want 1/1/1",
			as.IngestRejectedReplay, as.IngestRejectedKey, as.IngestRejectedMalformed)
	}
	if as.IngestStoreFailed != 0 {
		t.Fatalf("IngestStoreFailed = %d: protocol rejects were conflated with store failures", as.IngestStoreFailed)
	}
	// The same counts must surface in the metrics registry (the hirepnode
	// shutdown table reads it).
	snap := agentNode.Metrics().Snapshot()
	for _, name := range []string{
		"node_ingest_rejected_replay_total",
		"node_ingest_rejected_key_total",
		"node_ingest_rejected_malformed_total",
	} {
		if snap[name] != 1 {
			t.Fatalf("registry %s = %d, want 1", name, snap[name])
		}
	}
}

// TestLegacyReportRejectsCounted is the single-report regression: a report
// from an unknown key and a replayed report must not bump reportsStored and
// must bump the matching reject counter — previously both were swallowed
// without a trace.
func TestLegacyReportRejectsCounted(t *testing.T) {
	agentNode, peer, info, replyOnion := batchPair(t, Options{})
	subject, _ := pkc.NewIdentity(nil)

	// Unknown reporter: never introduced, so the agent holds no key for it.
	if err := peer.ReportTransaction(info, subject.ID, true); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return agentNode.Stats().IngestRejectedKey == 1 })
	if as := agentNode.Stats(); as.ReportsStored != 0 {
		t.Fatalf("unknown-key report was stored (ReportsStored=%d)", as.ReportsStored)
	}

	// Introduce the peer, then replay one identical signed report.
	if _, _, err := peer.RequestTrust(info, subject.ID, replyOnion); err != nil {
		t.Fatal(err)
	}
	self := peer.identity()
	nonce, _ := pkc.NewNonce(nil)
	reportWire := agentdir.SignReport(self, subject.ID, true, nonce)
	var e wire.Encoder
	e.Bytes(self.ID[:])
	e.Bytes(reportWire)
	sealed, err := pkc.Seal(info.AP, e.Encode(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := peer.sendThroughOnion(info.Onion, wire.TReport, sealed); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return agentNode.Stats().IngestRejectedReplay == 1 })
	as := agentNode.Stats()
	if as.ReportsStored != 1 {
		t.Fatalf("ReportsStored = %d, want 1 (first copy only)", as.ReportsStored)
	}
	if as.IngestRejectedReplay != 1 || as.IngestRejectedKey != 1 {
		t.Fatalf("reject counters replay=%d key=%d, want 1/1", as.IngestRejectedReplay, as.IngestRejectedKey)
	}
}

// TestReportBatchSaturationSheds stops the agent's verification workers and
// fills its one-slot admission queue: the next batch must come back
// all-saturated — typed backpressure, not a hang or a silent drop — and
// ReportBatchOrDefer must route every saturated report into the outbox so
// acked + rejected + deferred still accounts for the whole batch.
func TestReportBatchSaturationSheds(t *testing.T) {
	agentNode, peer, info, replyOnion := batchPair(t, Options{VerifyWorkers: 1, VerifyQueue: 1})
	subject, _ := pkc.NewIdentity(nil)
	agentNode.ingest.stop() // no workers: the queue can only fill

	reports := []BatchReport{{Subject: subject.ID, Positive: true}, {Subject: subject.ID, Positive: false}}
	// First batch occupies the queue slot (nobody drains it), so its ack
	// never arrives; give it a throwaway send with a short wait.
	if _, err := peer.reportBatchOnce(info, reports[:1], replyOnion, nil, 300*time.Millisecond); err != ErrTimeout {
		t.Fatalf("queued batch returned %v, want %v (ack can only time out)", err, ErrTimeout)
	}
	// Second batch finds the queue full and must be shed with an ack.
	statuses, err := peer.ReportBatch(info, reports, replyOnion)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range statuses {
		if st != StatusSaturated {
			t.Fatalf("report %d acked %v, want saturated", i, st)
		}
		if !st.Retryable() {
			t.Fatalf("saturated must be retryable")
		}
	}
	if as := agentNode.Stats(); as.IngestShed != 2 {
		t.Fatalf("IngestShed = %d, want 2", as.IngestShed)
	}

	// The resilient entry point turns those saturated acks into deferrals.
	if err := peer.ReportBatchOrDefer(nil, info, reports, replyOnion); err != nil {
		t.Fatal(err)
	}
	ps := peer.Stats()
	if ps.ReportsDeferred != 2 || ps.ReportsAcked != 0 || ps.ReportsRejected != 0 {
		t.Fatalf("sender stats deferred=%d acked=%d rejected=%d, want 2/0/0",
			ps.ReportsDeferred, ps.ReportsAcked, ps.ReportsRejected)
	}
	if d := peer.OutboxDepth(); d != 2 {
		t.Fatalf("outbox depth = %d, want 2", d)
	}
}

// TestReportBatchOrDeferReconciles checks the sender-side ledger on the
// happy path: every report handed to ReportBatchOrDefer is acked as stored,
// counted exactly once, and nothing is deferred or rejected.
func TestReportBatchOrDeferReconciles(t *testing.T) {
	agentNode, peer, info, replyOnion := batchPair(t, Options{})
	subject, _ := pkc.NewIdentity(nil)
	const n = 10
	reports := make([]BatchReport, n)
	for i := range reports {
		reports[i] = BatchReport{Subject: subject.ID, Positive: true}
	}
	if err := peer.ReportBatchOrDefer(nil, info, reports, replyOnion); err != nil {
		t.Fatal(err)
	}
	ps := peer.Stats()
	if ps.ReportsAcked != n || ps.ReportsRejected != 0 || ps.ReportsDeferred != 0 {
		t.Fatalf("sender stats acked=%d rejected=%d deferred=%d, want %d/0/0",
			ps.ReportsAcked, ps.ReportsRejected, ps.ReportsDeferred, n)
	}
	if got := agentNode.Agent().ReportCount(); got != n {
		t.Fatalf("agent stored %d, want %d", got, n)
	}
}

// TestFlushOutboxBatched attaches a standing reply onion and lets the
// flusher drain deferred reports as one acknowledged batch: the outbox must
// empty, every entry retiring on its acked status, and the reports must land
// in the agent's store.
func TestFlushOutboxBatched(t *testing.T) {
	agentNode, peer, info, replyOnion := batchPair(t, Options{})
	subject, _ := pkc.NewIdentity(nil)
	const n = 5
	for i := 0; i < n; i++ {
		peer.deferReport(info, subject.ID, i%2 == 0)
	}
	if d := peer.OutboxDepth(); d != n {
		t.Fatalf("outbox depth = %d before flush, want %d", d, n)
	}
	peer.SetReplyOnion(replyOnion) // enables the batched flush and kicks it
	waitFor(t, func() bool { return peer.OutboxDepth() == 0 })
	waitFor(t, func() bool { return agentNode.Agent().ReportCount() == n })
	ps := peer.Stats()
	if ps.ReportsAcked != n || ps.ReportsLost != 0 {
		t.Fatalf("sender stats acked=%d lost=%d, want %d/0", ps.ReportsAcked, ps.ReportsLost, n)
	}
	if as := agentNode.Stats(); as.ReportsStored != n {
		t.Fatalf("agent stored %d, want %d", as.ReportsStored, n)
	}
}

// TestReportBatchTooLarge bounds the sender API.
func TestReportBatchTooLarge(t *testing.T) {
	peer := fleet(t, 1, 0)[0]
	reports := make([]BatchReport, MaxBatchReports+1)
	if _, err := peer.ReportBatch(AgentInfo{}, reports, nil); err != ErrBatchTooLarge {
		t.Fatalf("got %v, want ErrBatchTooLarge", err)
	}
}

// FuzzDecodeReportBatch throws arbitrary bytes at the batch decoder: it must
// never panic or over-allocate, and every accepted batch must re-encode from
// parsed fields without loss of count.
func FuzzDecodeReportBatch(f *testing.F) {
	// Seed with a well-formed batch so the fuzzer starts from valid shapes.
	self, err := pkc.NewIdentity(nil)
	if err != nil {
		f.Fatal(err)
	}
	var subject pkc.NodeID
	nonce, _ := pkc.NewNonce(nil)
	ro := &onion.Onion{Entry: "127.0.0.1:1", Blob: []byte{1, 2, 3}, Seq: 1, Sig: []byte{4}}
	wires := [][]byte{agentdir.SignReport(self, subject, true, nonce)}
	f.Add(encodeReportBatch(self, nonce, ro, wires, nil))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := decodeReportBatch(data)
		if err != nil {
			return
		}
		if len(b.reports) == 0 || len(b.reports) > MaxBatchReports {
			t.Fatalf("accepted batch with %d reports", len(b.reports))
		}
		if len(b.sp) == 0 || b.ap == nil || b.replyOnion == nil {
			t.Fatal("accepted batch with missing fields")
		}
	})
}

// TestReportBatchOrDeferStopsWhenSaturated pins the saturation-backoff fix:
// once a chunk comes back with an all-saturated ack, ReportBatchOrDefer must
// defer the remaining chunks in one step instead of firing each of them at
// the saturated agent — the hot loop that re-shed every chunk and burned a
// full batch/ack round trip per re-defer.
func TestReportBatchOrDeferStopsWhenSaturated(t *testing.T) {
	agentNode, err := Listen("127.0.0.1:0", Options{
		Agent: true, Timeout: 4 * time.Second, VerifyWorkers: 1, VerifyQueue: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agentNode.Close() })
	relay := fleet(t, 1, 0)[0]
	// A tiny batch size makes the report list span several chunks, and an
	// hour-scale flush interval keeps the outbox flusher from re-sending
	// deferred reports mid-assertion.
	sender, err := Listen("127.0.0.1:0", Options{
		Timeout: 4 * time.Second, ReportBatchSize: 2, OutboxFlushInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sender.Close() })
	ao, err := agentNode.BuildOnion(fetchRoute(t, agentNode, []*Node{relay}))
	if err != nil {
		t.Fatal(err)
	}
	info := agentNode.Info(ao)
	ro, err := sender.BuildOnion(fetchRoute(t, sender, []*Node{relay}))
	if err != nil {
		t.Fatal(err)
	}
	subject, _ := pkc.NewIdentity(nil)

	agentNode.ingest.stop() // no workers: the queue can only fill
	// Occupy the single admission slot; nobody drains it, so the ack can
	// only time out.
	filler := []BatchReport{{Subject: subject.ID, Positive: true}}
	if _, err := sender.reportBatchOnce(info, filler, ro, nil, 300*time.Millisecond); err != ErrTimeout {
		t.Fatalf("queued batch returned %v, want %v", err, ErrTimeout)
	}

	// Three chunks' worth of reports. Chunk 1 is shed with an all-saturated
	// ack; chunks 2 and 3 must be deferred without touching the wire.
	reports := make([]BatchReport, 6)
	for i := range reports {
		reports[i] = BatchReport{Subject: subject.ID, Positive: i%2 == 0}
	}
	if err := sender.ReportBatchOrDefer(nil, info, reports, ro); err != nil {
		t.Fatal(err)
	}
	if got := sender.Stats().ReportsDeferred; got != 6 {
		t.Fatalf("deferred %d reports, want all 6", got)
	}
	if got := agentNode.Stats().IngestShed; got != 2 {
		t.Fatalf("agent shed %d reports, want 2: the sender must stop after one all-saturated ack", got)
	}
}

// TestEmptyReportBatchCountedMalformed pins the decode-layer rejection of a
// zero-report batch: it must be counted as malformed and never occupy a
// verification-pool slot.
func TestEmptyReportBatchCountedMalformed(t *testing.T) {
	agentNode, peer, info, replyOnion := batchPair(t, Options{})
	nonce, err := pkc.NewNonce(nil)
	if err != nil {
		t.Fatal(err)
	}
	plain := encodeReportBatch(peer.identity(), nonce, replyOnion, nil, nil)
	sealed, err := pkc.Seal(info.AP, plain, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := peer.sendThroughOnion(info.Onion, wire.TReportBatch, sealed); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return agentNode.Stats().IngestRejectedMalformed == 1 })
	if got := agentNode.Stats().ReportBatches; got != 0 {
		t.Fatalf("empty batch reached the verification pool (%d batches run)", got)
	}
}
