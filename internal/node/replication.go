package node

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hirep/internal/onion"
	"hirep/internal/pkc"
	"hirep/internal/repstore"
	"hirep/internal/resilience"
	"hirep/internal/transport"
	"hirep/internal/wire"
)

// This file implements agent-state replication (DESIGN.md §10): a primary
// agent ships every committed repstore batch to its replica agents over the
// pooled transport, sequenced per process epoch, with periodic anti-entropy
// (per-shard CRC/version digests, full shard streams for mismatches) so a
// diverged replica or cold standby converges without replaying the primary's
// disk. Replica state plugs into the serving path through
// agentdir.Agent.AttachSource, so a promoted standby answers trust requests
// with the dead primary's tallies.

// Replication defaults.
const (
	defaultSyncInterval = 5 * time.Second
	defaultHandoffCap   = 1024
)

// repairSentinel is the shard index of the final frame of an anti-entropy
// round; it seals the round at the primary's sequence point.
const repairSentinel = ^uint64(0)

// Domain-separation tags for replication signatures: a signature over one
// message kind must not verify as another.
const (
	replSigBatch  = 1
	replSigDigest = 2
	replSigRepair = 3
	replSigFetch  = 4
)

// replSigPrefix domain-separates replication signatures from every other
// signed byte string in the protocol (reports, onions, trust responses).
var replSigPrefix = []byte("hirep/repl/v1\x00")

// replSign signs a replication signedPart under the domain prefix.
func replSign(id *pkc.Identity, signedPart []byte) []byte {
	msg := make([]byte, 0, len(replSigPrefix)+len(signedPart))
	msg = append(msg, replSigPrefix...)
	msg = append(msg, signedPart...)
	return id.SignMessage(msg)
}

// replVerify checks a replication signature under the domain prefix.
func replVerify(sp ed25519.PublicKey, signedPart, sig []byte) bool {
	msg := make([]byte, 0, len(replSigPrefix)+len(signedPart))
	msg = append(msg, replSigPrefix...)
	msg = append(msg, signedPart...)
	return pkc.Verify(sp, msg, sig)
}

// replWrap builds the outer payload of every replication frame:
// SP | signedPart | signature. The frame is self-certifying — the receiver
// derives the sender's nodeID from SP and needs no prior key exchange.
func replWrap(id *pkc.Identity, signedPart []byte) []byte {
	var e wire.Encoder
	e.Bytes(id.Sign.Public).Bytes(signedPart).Bytes(replSign(id, signedPart))
	return e.Encode()
}

// replUnwrap verifies and opens a replication frame, returning the sender's
// derived nodeID and the signedPart.
func replUnwrap(payload []byte) (sender pkc.NodeID, signedPart []byte, ok bool) {
	d := wire.NewDecoder(payload)
	spRaw := d.Bytes()
	part := d.Bytes()
	sig := d.Bytes()
	if d.Finish() != nil || len(spRaw) != ed25519.PublicKeySize {
		return pkc.NodeID{}, nil, false
	}
	sp := ed25519.PublicKey(spRaw)
	if !replVerify(sp, part, sig) {
		return pkc.NodeID{}, nil, false
	}
	return pkc.DeriveNodeID(sp), part, true
}

// splitGroup parses the comma-joined replica address list shipped in
// replication frames.
func splitGroup(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// --- primary side --------------------------------------------------------

// replicator is the primary-side shipping machinery: one hinted-handoff
// outbox and sender goroutine per replica, fed by the store's OnCommit tap.
type replicator struct {
	n     *Node
	self  *pkc.Identity // identity captured at Listen; frames are signed with it
	epoch uint64        // random per process start; replicas detect restarts by it
	group string        // comma-joined replica addresses, shipped for promotion pulls

	// mu orders sequence assignment with outbox enqueue: OnCommit delivers
	// batches in commit order (single-flight flush), and taking mu across
	// seq++ plus all enqueues keeps the queues in that same order.
	mu      sync.Mutex
	seq     uint64
	targets []*replTarget
	wg      sync.WaitGroup
}

// replTarget is one replica's shipping state.
type replTarget struct {
	addr  string
	out   *resilience.Outbox // hinted handoff: bounded, journaled when StoreDir is set
	brk   *resilience.Breaker
	kick  chan struct{}
	acked atomic.Uint64 // highest sequence the replica has acknowledged
	// dirty means the replica's state is not known to equal ours: set at
	// start (a cold standby must get one full comparison) and whenever a
	// round fails, cleared by a completed anti-entropy pass. While clear and
	// fully acked, the periodic tick skips the digest round entirely — a
	// caught-up fleet costs nothing at steady state.
	dirty atomic.Bool
}

// newReplicator builds the shipping state for opts.Replicas. Handoff queues
// are journaled under StoreDir when set, so batches queued for a down replica
// survive a primary restart (the replica then reconverges via anti-entropy,
// since the restart changed the epoch).
func newReplicator(n *Node, id *pkc.Identity) (*replicator, error) {
	var eb [8]byte
	if _, err := rand.Read(eb[:]); err != nil {
		return nil, fmt.Errorf("node: replication epoch: %w", err)
	}
	r := &replicator{
		n:     n,
		self:  id,
		epoch: binary.LittleEndian.Uint64(eb[:]) | 1, // zero means "fresh replica"
		group: strings.Join(n.opts.Replicas, ","),
	}
	for i, addr := range n.opts.Replicas {
		path := ""
		if n.opts.StoreDir != "" {
			path = filepath.Join(n.opts.StoreDir, fmt.Sprintf("handoff-%d.journal", i))
		}
		out, err := resilience.OpenOutbox(path, n.opts.HandoffCap)
		if err != nil {
			r.closeOutboxes()
			return nil, fmt.Errorf("node: open handoff journal: %w", err)
		}
		t := &replTarget{
			addr: addr,
			out:  out,
			brk:  resilience.NewBreaker(n.opts.Breaker),
			kick: make(chan struct{}, 1),
		}
		t.dirty.Store(true)
		r.targets = append(r.targets, t)
	}
	return r, nil
}

func (r *replicator) start() {
	for _, t := range r.targets {
		r.wg.Add(1)
		go r.senderLoop(t)
	}
}

func (r *replicator) closeOutboxes() {
	for _, t := range r.targets {
		_ = t.out.Close()
	}
}

// onCommit is the repstore.Options.OnCommit hook: it runs on the committing
// goroutine (under the store's apply read lock) and must not block on the
// network, so it only assigns the batch its sequence number and enqueues it
// per replica. An overflowing queue evicts its oldest entry — the replica
// will see a sequence gap and be healed by anti-entropy.
func (r *replicator) onCommit(batch []byte) {
	r.mu.Lock()
	r.seq++
	var e wire.Encoder
	e.U64(r.seq).Bytes(batch)
	entry := e.Encode()
	for _, t := range r.targets {
		evicted, err := t.out.Enqueue("", entry)
		if evicted > 0 {
			r.n.cnt.replHandoffDropped.Add(int64(evicted))
		}
		if err != nil {
			r.n.cnt.replHandoffDropped.Inc()
		}
	}
	r.mu.Unlock()
	r.n.stats.replBatches.Add(1)
	for _, t := range r.targets {
		select {
		case t.kick <- struct{}{}:
		default:
		}
	}
}

// senderLoop serializes everything sent to one replica — batch shipping and
// anti-entropy — so a repair stream can never interleave with (and
// double-apply against) in-flight batches.
func (r *replicator) senderLoop(t *replTarget) {
	defer r.wg.Done()
	ticker := time.NewTicker(r.n.opts.SyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.n.closeCh:
			return
		case <-t.kick:
			r.drain(t)
		case <-ticker.C:
			// The periodic pass is drain + digest comparison, so replicas
			// converge even when nothing kicks (e.g. divergence from an
			// earlier eviction while the replica was down). A replica that is
			// fully acked and passed its last comparison is skipped outright:
			// the steady-state cost of an in-sync fleet is zero frames, not a
			// per-tick sync point over the whole store.
			if !r.drain(t) {
				continue
			}
			r.mu.Lock()
			seq := r.seq
			r.mu.Unlock()
			if !t.dirty.Load() && t.acked.Load() == seq {
				continue
			}
			if err := r.antiEntropy(t); err != nil {
				t.dirty.Store(true)
				t.brk.Failure()
			}
		}
	}
}

// drain ships queued batches to the replica in sequence order. It reports
// whether the replica is currently reachable (false stops the periodic pass
// from paying an anti-entropy timeout on a peer already known down).
func (r *replicator) drain(t *replTarget) bool {
	for _, e := range t.out.Pending() {
		if r.n.isClosed() {
			return false
		}
		d := wire.NewDecoder(e.Payload)
		seq := d.U64()
		batch := d.Bytes()
		if d.Finish() != nil {
			_ = t.out.Ack(e.Seq) // corrupt journal entry: drop
			continue
		}
		if seq <= t.acked.Load() {
			_ = t.out.Ack(e.Seq) // subsumed by an earlier ack or repair
			continue
		}
		if allow, _ := t.brk.Allow(); !allow {
			r.updateDepthGauge()
			return false
		}
		ack, err := r.sendBatch(t.addr, seq, batch)
		if err != nil {
			t.brk.Failure()
			r.updateDepthGauge()
			return false
		}
		t.brk.Success()
		if ack.diverged || ack.lastSeq < seq {
			// The replica missed batches (queue eviction, restart, another
			// primary incarnation): stream full state and resume from the
			// sync point.
			t.dirty.Store(true)
			if err := r.antiEntropy(t); err != nil {
				t.brk.Failure()
				r.updateDepthGauge()
				return false
			}
			continue
		}
		t.acked.Store(ack.lastSeq)
		_ = t.out.Ack(e.Seq)
		r.n.stats.replShipped.Add(1)
	}
	r.updateDepthGauge()
	return true
}

// replAck is a decoded RReplicateAck.
type replAck struct {
	epoch, lastSeq uint64
	diverged       bool
}

func (r *replicator) sendBatch(addr string, seq uint64, batch []byte) (replAck, error) {
	var sp wire.Encoder
	sp.U64(replSigBatch).U64(r.epoch).U64(seq)
	sp.U64(uint64(r.n.agent.Store().ShardCount()))
	sp.String(r.group).Bytes(batch)
	typ, resp, err := r.n.roundTripTimeout(addr, wire.RReplicate, replWrap(r.self, sp.Encode()), r.n.timeout())
	if err != nil {
		return replAck{}, err
	}
	if typ != wire.RReplicateAck {
		return replAck{}, ErrBadMessage
	}
	d := wire.NewDecoder(resp)
	a := replAck{epoch: d.U64(), lastSeq: d.U64(), diverged: d.Bool()}
	if err := d.Finish(); err != nil {
		return replAck{}, err
	}
	return a, nil
}

// antiEntropy converges one replica onto the primary's current state:
//
//  1. Fetch the replica's per-shard digests first — any write racing this
//     round makes a shard look mismatched and repaired, never skipped. The
//     digest response carries the replica-issued challenge every repair
//     frame of this round must echo.
//  2. Fast path: if the replica reports our (epoch, acked) position, is not
//     diverged, and every shard CRC matches, the round ends here — no sync
//     point, no sentinel, no replica snapshot. Digest CRCs are cached per
//     shard version, so this comparison is cheap on both sides.
//  3. Otherwise, under the store's sync point (no mutation in flight, every
//     committed batch tapped), capture the sequence point S and export every
//     mismatched shard. The exports correspond to exactly the batches
//     numbered <= S.
//  4. Stream the shard exports, then a sealing sentinel carrying S: the
//     replica adopts (epoch, S) and clears its diverged flag.
//
// Handoff entries at or below S are subsumed by the repair and acked.
func (r *replicator) antiEntropy(t *replTarget) error {
	st := r.n.agent.Store()
	theirs, err := r.n.replDigests(t.addr, r.self, r.self.ID)
	if err != nil {
		return err
	}
	if theirs.epoch == r.epoch && !theirs.diverged && theirs.lastSeq == t.acked.Load() {
		mine := st.Digests()
		if digestsEqual(mine, theirs.digests) {
			t.dirty.Store(false)
			return nil
		}
	}
	if len(theirs.challenge) != pkc.NonceSize {
		// The replica issued no challenge: it does not recognize us as its
		// primary (not in its ReplicaOf set) — repairs would be rejected.
		return fmt.Errorf("node: replica %s issued no repair challenge: %w", t.addr, ErrBadMessage)
	}
	var s uint64
	exports := make(map[int][]byte)
	st.SyncPoint(func() {
		r.mu.Lock()
		s = r.seq
		r.mu.Unlock()
		for i, d := range st.Digests() {
			if i >= len(theirs.digests) || theirs.digests[i] != d {
				exports[i] = st.ExportShard(i)
			}
		}
	})
	for i, exp := range exports {
		if err := r.sendRepair(t.addr, uint64(i), s, theirs.challenge, exp); err != nil {
			return err
		}
		r.n.cnt.replShardsRepaired.Inc()
	}
	if err := r.sendRepair(t.addr, repairSentinel, s, theirs.challenge, nil); err != nil {
		return err
	}
	t.acked.Store(s)
	t.dirty.Store(false)
	for _, e := range t.out.Pending() {
		d := wire.NewDecoder(e.Payload)
		if seq := d.U64(); d.Err() == nil && seq <= s {
			_ = t.out.Ack(e.Seq)
		}
	}
	r.updateDepthGauge()
	r.n.cnt.replAntiEntropy.Inc()
	r.n.stats.replRepairs.Add(1)
	return nil
}

// digestsEqual reports whether two digest vectors describe identical state.
func digestsEqual(a, b []repstore.ShardDigest) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].CRC != b[i].CRC {
			return false
		}
	}
	return true
}

func (r *replicator) sendRepair(addr string, shard, syncSeq uint64, challenge, export []byte) error {
	var sp wire.Encoder
	sp.U64(replSigRepair).U64(r.epoch).U64(syncSeq)
	sp.U64(uint64(r.n.agent.Store().ShardCount()))
	sp.U64(shard).Bytes(challenge).String(r.group).Bytes(export)
	typ, _, err := r.n.roundTripTimeout(addr, wire.RRepair, replWrap(r.self, sp.Encode()), r.n.timeout())
	if err != nil {
		return err
	}
	if typ != wire.RRepairAck {
		return ErrBadMessage
	}
	return nil
}

func (r *replicator) updateDepthGauge() {
	var total int
	for _, t := range r.targets {
		total += t.out.Depth()
	}
	r.n.cnt.replHandoffDepth.Set(int64(total))
}

// position returns the primary's own replication position for status probes.
func (r *replicator) position() (epoch, seq uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch, r.seq
}

// --- replica side --------------------------------------------------------

// replicaSet holds the replica stores this agent maintains for other
// primaries, keyed by primary nodeID, plus the authorization sets that gate
// every replication frame: replication is an offline pairing, not an open
// protocol, so a frame from an unconfigured identity is dropped no matter how
// well it verifies. primaries are the IDs this node replicates FOR
// (RReplicate/RRepair ingress, store creation); peers are fellow
// replica-group members additionally allowed to read state (RDigest/RFetch,
// promotion-time pulls).
type replicaSet struct {
	mu        sync.Mutex
	m         map[pkc.NodeID]*replState
	primaries map[pkc.NodeID]bool
	peers     map[pkc.NodeID]bool
	rounds    map[pkc.NodeID]*repairRound
}

// repairRound is the replica-side state of one in-flight anti-entropy round:
// the challenge this replica issued (every RRepair frame of the round must
// echo it, so captured rounds cannot be replayed later) and how many shards
// the round actually imported (a round that shipped nothing should not force
// a snapshot).
type repairRound struct {
	challenge pkc.Nonce
	imports   int
}

func newReplicaSet(primaries, peers []pkc.NodeID) *replicaSet {
	rs := &replicaSet{
		m:         make(map[pkc.NodeID]*replState),
		primaries: make(map[pkc.NodeID]bool),
		peers:     make(map[pkc.NodeID]bool),
		rounds:    make(map[pkc.NodeID]*repairRound),
	}
	for _, id := range primaries {
		rs.primaries[id] = true
	}
	for _, id := range peers {
		rs.peers[id] = true
	}
	return rs
}

// AuthorizeReplicaOf allows ids to replicate their agent state into this
// node (in addition to Options.ReplicaOf). Identities are minted at Listen,
// so a fleet wires these pairings after its nodes are up.
func (n *Node) AuthorizeReplicaOf(ids ...pkc.NodeID) {
	if n.replicas == nil {
		return
	}
	n.replicas.mu.Lock()
	defer n.replicas.mu.Unlock()
	for _, id := range ids {
		n.replicas.primaries[id] = true
	}
}

// AuthorizeReplicaPeer allows ids — fellow members of a replica group — to
// read this node's replication state (digests and shard fetches), in
// addition to Options.ReplicaPeers.
func (n *Node) AuthorizeReplicaPeer(ids ...pkc.NodeID) {
	if n.replicas == nil {
		return
	}
	n.replicas.mu.Lock()
	defer n.replicas.mu.Unlock()
	for _, id := range ids {
		n.replicas.peers[id] = true
	}
}

// allowedPrimary reports whether id may mutate replica state on this node.
func (n *Node) allowedPrimary(id pkc.NodeID) bool {
	if n.replicas == nil {
		return false
	}
	n.replicas.mu.Lock()
	defer n.replicas.mu.Unlock()
	return n.replicas.primaries[id]
}

// allowedReader reports whether id may read replication state from this
// node: configured primaries and group peers qualify, anyone else — however
// validly self-signed — does not (shard exports carry per-reporter tallies,
// which must never leak outside the group).
func (n *Node) allowedReader(id pkc.NodeID) bool {
	if n.replicas == nil {
		return false
	}
	n.replicas.mu.Lock()
	defer n.replicas.mu.Unlock()
	return n.replicas.primaries[id] || n.replicas.peers[id]
}

// replState is one primary's replica: its store plus the applied position.
// epoch/lastSeq are session state (not persisted); after a replica restart
// they read 0/0 and the next batch or digest round triggers anti-entropy,
// which is what actually re-certifies the content.
type replState struct {
	mu       sync.Mutex
	store    *repstore.Store
	epoch    uint64
	lastSeq  uint64
	diverged bool
	group    []string
}

// replicaState returns (creating on demand when create is set) the replica
// state for primary. New stores live under StoreDir/replica/<primaryID> when
// the node is durable and attach to the agent as a serving source.
func (n *Node) replicaState(primary pkc.NodeID, shardCount int, create bool) (*replState, error) {
	if n.replicas == nil {
		return nil, ErrNotAgent
	}
	n.replicas.mu.Lock()
	defer n.replicas.mu.Unlock()
	if st, ok := n.replicas.m[primary]; ok {
		return st, nil
	}
	if !create {
		return nil, nil
	}
	dir := ""
	if n.opts.StoreDir != "" {
		dir = filepath.Join(n.opts.StoreDir, "replica", primary.String())
	}
	store, err := repstore.Open(dir, repstore.Options{Shards: shardCount})
	if err != nil {
		return nil, err
	}
	st := &replState{store: store}
	n.replicas.m[primary] = st
	n.agent.AttachSource("replica/"+primary.String(), store)
	return st, nil
}

// closeReplicaStores flushes and releases every replica store.
func (n *Node) closeReplicaStores() error {
	if n.replicas == nil {
		return nil
	}
	n.replicas.mu.Lock()
	defer n.replicas.mu.Unlock()
	var err error
	for _, st := range n.replicas.m {
		if cerr := st.store.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ReplicaReportCount returns how many reports this node's replica of primary
// holds (0 when it holds none), for tests and monitoring.
func (n *Node) ReplicaReportCount(primary pkc.NodeID) int {
	st, err := n.replicaState(primary, 0, false)
	if err != nil || st == nil {
		return 0
	}
	return st.store.ReportCount()
}

// handleReplicate applies one shipped batch. Only the primary itself can
// mutate its replica: the frame is signed, the signer's derived nodeID is
// the replica key, and — because the frame is otherwise self-certifying —
// the signer must be a primary this node was explicitly configured to
// replicate for, or any attacker could mint an identity and poison the
// combined tally this agent serves (and fill its disk with replica stores).
func (n *Node) handleReplicate(r transport.Responder, payload []byte) {
	sender, part, ok := replUnwrap(payload)
	if !ok || n.replicas == nil {
		return
	}
	if !n.allowedPrimary(sender) {
		n.cnt.replUnauthorized.Inc()
		return
	}
	d := wire.NewDecoder(part)
	if d.U64() != replSigBatch {
		return
	}
	epoch := d.U64()
	seq := d.U64()
	shardCount := d.U64()
	group := d.String()
	batch := d.Bytes()
	if d.Finish() != nil || epoch == 0 || shardCount == 0 || shardCount > 1<<16 {
		return
	}
	st, err := n.replicaState(sender, int(shardCount), true)
	if err != nil {
		return
	}
	st.mu.Lock()
	st.group = splitGroup(group)
	switch {
	case st.epoch == 0 && st.lastSeq == 0 && st.store.ReportCount() == 0:
		// A genuinely fresh replica adopts the primary's incarnation. A
		// restarted replica (content but zeroed session state) must NOT: its
		// content may trail the sequence numbers, so it reports divergence
		// and lets anti-entropy re-certify it.
		st.epoch = epoch
	case st.epoch != epoch:
		st.diverged = true
	}
	applied := false
	if !st.diverged {
		switch {
		case seq == st.lastSeq+1:
			if _, err := st.store.ApplyBatch(batch); err != nil {
				st.diverged = true
			} else {
				st.lastSeq = seq
				applied = true
			}
		case seq > st.lastSeq+1:
			st.diverged = true // gap: batches were evicted or lost
		}
		// seq <= lastSeq is a duplicate of an applied batch: ack as-is.
	}
	var e wire.Encoder
	e.U64(st.epoch).U64(st.lastSeq).Bool(st.diverged)
	st.mu.Unlock()
	if applied {
		n.stats.replApplied.Add(1)
	}
	_ = r.Respond(wire.RReplicateAck, e.Encode())
}

// handleRepair imports one shard stream of an anti-entropy round, or — for
// the sentinel frame — seals the round at the primary's sequence point.
// Every frame must echo the challenge this replica issued in the digest
// response that opened the round: a primary signature alone is not freshness,
// and a captured round replayed after the primary's death would otherwise
// permanently roll a promoted replica back to stale state.
func (n *Node) handleRepair(r transport.Responder, payload []byte) {
	sender, part, ok := replUnwrap(payload)
	if !ok || n.replicas == nil {
		return
	}
	if !n.allowedPrimary(sender) {
		n.cnt.replUnauthorized.Inc()
		return
	}
	d := wire.NewDecoder(part)
	if d.U64() != replSigRepair {
		return
	}
	epoch := d.U64()
	syncSeq := d.U64()
	shardCount := d.U64()
	shardIndex := d.U64()
	challenge := d.Bytes()
	group := d.String()
	export := d.Bytes()
	if d.Finish() != nil || epoch == 0 || shardCount == 0 || shardCount > 1<<16 {
		return
	}
	if !n.matchRepairRound(sender, challenge) {
		n.cnt.replUnauthorized.Inc()
		return
	}
	st, err := n.replicaState(sender, int(shardCount), true)
	if err != nil {
		return
	}
	st.mu.Lock()
	st.group = splitGroup(group)
	if shardIndex == repairSentinel {
		imports := n.finishRepairRound(sender) // one seal per round: replay-proof
		// Seal: state now equals the primary's sync point.
		st.epoch = epoch
		st.lastSeq = syncSeq
		st.diverged = false
		st.mu.Unlock()
		// Fold the repaired state into a snapshot so a durable replica
		// reopening does not replay a WAL that predates the imports — but only
		// when the round actually imported something; a no-op seal must not
		// force a full store snapshot.
		if imports > 0 {
			_ = st.store.Snapshot()
		}
		_ = r.Respond(wire.RRepairAck, (&wire.Encoder{}).U64(syncSeq).Encode())
		return
	}
	if shardIndex >= uint64(st.store.ShardCount()) {
		st.mu.Unlock()
		return
	}
	ierr := st.store.ImportShard(int(shardIndex), export)
	st.mu.Unlock()
	if ierr != nil {
		return
	}
	n.noteRepairImport(sender)
	_ = r.Respond(wire.RRepairAck, (&wire.Encoder{}).U64(shardIndex).Encode())
}

// openRepairRound issues a fresh challenge for primary, replacing any
// outstanding round (an aborted round's challenge dies with it).
func (n *Node) openRepairRound(primary pkc.NodeID) (pkc.Nonce, error) {
	challenge, err := pkc.NewNonce(nil)
	if err != nil {
		return pkc.Nonce{}, err
	}
	n.replicas.mu.Lock()
	n.replicas.rounds[primary] = &repairRound{challenge: challenge}
	n.replicas.mu.Unlock()
	return challenge, nil
}

// matchRepairRound reports whether challenge matches the outstanding round
// for primary.
func (n *Node) matchRepairRound(primary pkc.NodeID, challenge []byte) bool {
	if len(challenge) != pkc.NonceSize {
		return false
	}
	n.replicas.mu.Lock()
	defer n.replicas.mu.Unlock()
	round := n.replicas.rounds[primary]
	return round != nil && string(challenge) == string(round.challenge[:])
}

// noteRepairImport counts one imported shard against primary's open round.
func (n *Node) noteRepairImport(primary pkc.NodeID) {
	n.replicas.mu.Lock()
	if round := n.replicas.rounds[primary]; round != nil {
		round.imports++
	}
	n.replicas.mu.Unlock()
}

// finishRepairRound consumes primary's open round and returns how many
// shards it imported.
func (n *Node) finishRepairRound(primary pkc.NodeID) int {
	n.replicas.mu.Lock()
	defer n.replicas.mu.Unlock()
	round := n.replicas.rounds[primary]
	if round == nil {
		return 0
	}
	delete(n.replicas.rounds, primary)
	return round.imports
}

// handleDigest serves this node's per-shard digests for a primary's state —
// its own store when primary is itself, or its replica of that primary.
// Digests (and the shard exports they lead to) are visible only to the
// configured replica group: the requester's derived nodeID must be an
// authorized primary or group peer. When the requester IS the primary asking
// about its own state, the response additionally carries a fresh challenge
// that opens an anti-entropy round — RRepair frames must echo it.
func (n *Node) handleDigest(r transport.Responder, payload []byte) {
	sender, part, ok := replUnwrap(payload)
	if !ok || n.replicas == nil {
		return
	}
	if !n.allowedReader(sender) {
		n.cnt.replUnauthorized.Inc()
		return
	}
	d := wire.NewDecoder(part)
	if d.U64() != replSigDigest {
		return
	}
	primaryRaw := d.Bytes()
	if d.Finish() != nil || len(primaryRaw) != pkc.NodeIDSize {
		return
	}
	var primary pkc.NodeID
	copy(primary[:], primaryRaw)
	var challenge []byte
	if sender == primary && n.allowedPrimary(sender) {
		c, err := n.openRepairRound(primary)
		if err != nil {
			return
		}
		challenge = c[:]
	}
	epoch, lastSeq, diverged, store := n.resolveReplSource(primary)
	var e wire.Encoder
	e.U64(epoch).U64(lastSeq).Bool(diverged).Bytes(challenge)
	if store == nil {
		e.U64(0)
	} else {
		digests := store.Digests()
		e.U64(uint64(len(digests)))
		for _, dg := range digests {
			e.U64(uint64(dg.CRC)).U64(dg.Version)
		}
	}
	_ = r.Respond(wire.RDigestResp, e.Encode())
}

// handleFetch serves one shard export for a primary's state (promotion-time
// pull between surviving replicas). Exports include per-reporter tallies, so
// they are served only to the configured replica group — to anyone else they
// would dismantle the reporter anonymity the onion path exists for.
func (n *Node) handleFetch(r transport.Responder, payload []byte) {
	sender, part, ok := replUnwrap(payload)
	if !ok || n.replicas == nil {
		return
	}
	if !n.allowedReader(sender) {
		n.cnt.replUnauthorized.Inc()
		return
	}
	d := wire.NewDecoder(part)
	if d.U64() != replSigFetch {
		return
	}
	primaryRaw := d.Bytes()
	shardIndex := d.U64()
	if d.Finish() != nil || len(primaryRaw) != pkc.NodeIDSize {
		return
	}
	var primary pkc.NodeID
	copy(primary[:], primaryRaw)
	epoch, lastSeq, _, store := n.resolveReplSource(primary)
	if store == nil || shardIndex >= uint64(store.ShardCount()) {
		return
	}
	var e wire.Encoder
	e.U64(epoch).U64(lastSeq).Bytes(store.ExportShard(int(shardIndex)))
	_ = r.Respond(wire.RFetchResp, e.Encode())
}

// resolveReplSource maps a primary nodeID onto the store this node holds for
// it: the agent's own store when asked about itself, else its replica store.
// A nil store means "this node knows nothing about that primary".
func (n *Node) resolveReplSource(primary pkc.NodeID) (epoch, lastSeq uint64, diverged bool, store *repstore.Store) {
	if n.agent != nil && primary == n.agent.ID() {
		if n.repl != nil {
			epoch, lastSeq = n.repl.position()
		}
		return epoch, lastSeq, false, n.agent.Store()
	}
	st, err := n.replicaState(primary, 0, false)
	if err != nil || st == nil {
		return 0, 0, false, nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.epoch, st.lastSeq, st.diverged, st.store
}

// --- digest / fetch clients ----------------------------------------------

// digestResp is a decoded RDigestResp.
type digestResp struct {
	epoch, lastSeq uint64
	diverged       bool
	challenge      []byte // repair-round challenge; empty unless the replica recognizes the requester as its primary
	digests        []repstore.ShardDigest
}

// replDigests asks addr for its per-shard digests of primary's state,
// signing the request as `as` — the replicator's pinned identity when the
// primary itself asks (the replica authorizes exactly that ID), the node's
// current identity for peer pulls.
func (n *Node) replDigests(addr string, as *pkc.Identity, primary pkc.NodeID) (digestResp, error) {
	var sp wire.Encoder
	sp.U64(replSigDigest).Bytes(primary[:])
	typ, resp, err := n.roundTripTimeout(addr, wire.RDigest, replWrap(as, sp.Encode()), n.timeout())
	if err != nil {
		return digestResp{}, err
	}
	if typ != wire.RDigestResp {
		return digestResp{}, ErrBadMessage
	}
	d := wire.NewDecoder(resp)
	out := digestResp{epoch: d.U64(), lastSeq: d.U64()}
	out.diverged = d.Bool()
	out.challenge = append([]byte(nil), d.Bytes()...)
	cnt := d.U64()
	if d.Err() != nil || cnt > 1<<16 {
		return digestResp{}, ErrBadMessage
	}
	out.digests = make([]repstore.ShardDigest, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		crc := d.U64()
		version := d.U64()
		out.digests = append(out.digests, repstore.ShardDigest{CRC: uint32(crc), Version: version})
	}
	if err := d.Finish(); err != nil {
		return digestResp{}, err
	}
	return out, nil
}

// replFetch pulls one shard export of primary's state from addr.
func (n *Node) replFetch(addr string, primary pkc.NodeID, shard uint64) (digestResp, []byte, error) {
	var sp wire.Encoder
	sp.U64(replSigFetch).Bytes(primary[:]).U64(shard)
	typ, resp, err := n.roundTripTimeout(addr, wire.RFetch, replWrap(n.identity(), sp.Encode()), n.timeout())
	if err != nil {
		return digestResp{}, nil, err
	}
	if typ != wire.RFetchResp {
		return digestResp{}, nil, ErrBadMessage
	}
	d := wire.NewDecoder(resp)
	pos := digestResp{epoch: d.U64(), lastSeq: d.U64()}
	export := d.Bytes()
	if err := d.Finish(); err != nil {
		return digestResp{}, nil, err
	}
	return pos, export, nil
}

// pullFromSurvivors reconciles this node's replica of primary with the other
// surviving replicas (the primary itself is gone): for every shard where a
// survivor's content differs AND its version is ahead, pull and import the
// survivor's copy. Returns the number of shards pulled.
func (n *Node) pullFromSurvivors(primary pkc.NodeID) int {
	st, err := n.replicaState(primary, 0, false)
	if err != nil || st == nil {
		return 0
	}
	st.mu.Lock()
	group := append([]string(nil), st.group...)
	st.mu.Unlock()
	self := n.Addr()
	pulled := 0
	for _, addr := range group {
		if addr == "" || addr == self {
			continue
		}
		resp, err := n.replDigests(addr, n.identity(), primary)
		if err != nil {
			continue
		}
		st.mu.Lock()
		mine := st.store.Digests()
		var want []int
		for i, dg := range mine {
			if i < len(resp.digests) && resp.digests[i].CRC != dg.CRC && resp.digests[i].Version > dg.Version {
				want = append(want, i)
			}
		}
		st.mu.Unlock()
		for _, i := range want {
			_, export, err := n.replFetch(addr, primary, uint64(i))
			if err != nil {
				continue
			}
			st.mu.Lock()
			if st.store.ImportShard(i, export) == nil {
				pulled++
			}
			st.mu.Unlock()
		}
		st.mu.Lock()
		if resp.epoch == st.epoch && resp.lastSeq > st.lastSeq {
			st.lastSeq = resp.lastSeq
		}
		st.mu.Unlock()
	}
	if pulled > 0 {
		_ = st.store.Snapshot()
	}
	n.stats.replPulled.Add(int64(pulled))
	return pulled
}

// --- replication-status probe (onion-inner) ------------------------------

// ReplStatus is a backup agent's replication position for one primary, the
// signal stateful promotion picks the most-caught-up standby by.
type ReplStatus struct {
	Primary pkc.NodeID
	Epoch   uint64
	LastSeq uint64
	Reports int64
}

// ReplicationStatus asks agent (through its onion) how caught-up its replica
// of primary is. promote additionally instructs the agent to reconcile with
// the surviving replicas before answering, so the returned position reflects
// the post-pull state. Single attempt; callers own retries.
func (n *Node) ReplicationStatus(agent AgentInfo, primary pkc.NodeID, promote bool, replyOnion *onion.Onion, wait time.Duration) (ReplStatus, error) {
	if n.isClosed() {
		return ReplStatus{}, ErrClosed
	}
	if err := agent.Onion.VerifySig(agent.SP); err != nil {
		return ReplStatus{}, fmt.Errorf("node: agent onion: %w", err)
	}
	nonce, err := pkc.NewNonce(nil)
	if err != nil {
		return ReplStatus{}, err
	}
	self := n.identity()
	var e wire.Encoder
	e.Bytes(self.Sign.Public)
	e.Bytes(self.Anon.Public.Bytes())
	e.Bytes(primary[:])
	e.Bytes(nonce[:])
	e.Bool(promote)
	encodeOnion(&e, replyOnion)
	sealed, err := pkc.Seal(agent.AP, e.Encode(), nil)
	if err != nil {
		return ReplStatus{}, err
	}
	ch := make(chan ReplStatus, 1)
	n.mu.Lock()
	n.pendingStatus[nonce] = ch
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.pendingStatus, nonce)
		n.mu.Unlock()
	}()
	if err := n.sendThroughOnionTimeout(agent.Onion, wire.TReplStatusReq, sealed, wait); err != nil {
		return ReplStatus{}, err
	}
	select {
	case st := <-ch:
		if st.Primary != primary {
			return ReplStatus{}, ErrBadAgent
		}
		return st, nil
	case <-time.After(wait):
		return ReplStatus{}, ErrTimeout
	}
}

// handleReplStatusReq answers a replication-status probe arriving through
// this agent's onion. A promote request pulls from survivors first, so the
// response position (and subsequent trust answers) reflect the reconciled
// state.
func (n *Node) handleReplStatusReq(sealed []byte) {
	if n.agent == nil {
		return
	}
	self, plain, ok := n.openAny(sealed)
	if !ok {
		return
	}
	d := wire.NewDecoder(plain)
	spRaw := append([]byte(nil), d.Bytes()...)
	apRaw := d.Bytes()
	primaryRaw := d.Bytes()
	nonceRaw := d.Bytes()
	promote := d.Bool()
	replyOnion, onionErr := decodeOnion(d)
	if d.Finish() != nil || onionErr != nil {
		return
	}
	if len(spRaw) != ed25519.PublicKeySize || len(primaryRaw) != pkc.NodeIDSize || len(nonceRaw) != pkc.NonceSize {
		return
	}
	requestorSP := ed25519.PublicKey(spRaw)
	requestorAP, err := ecdh.X25519().NewPublicKey(apRaw)
	if err != nil {
		return
	}
	requestorID := pkc.DeriveNodeID(requestorSP)
	if err := n.agent.RegisterKey(requestorID, requestorSP); err != nil {
		return
	}
	if err := replyOnion.VerifySig(requestorSP); err != nil {
		return
	}
	n.mu.Lock()
	ageErr := n.ages.Accept(requestorID, replyOnion)
	n.mu.Unlock()
	if ageErr != nil {
		return
	}
	var primary pkc.NodeID
	copy(primary[:], primaryRaw)
	if promote {
		n.pullFromSurvivors(primary)
	}
	epoch, lastSeq, _, store := n.resolveReplSource(primary)
	var reports int64
	if store != nil {
		reports = int64(store.ReportCount())
	}
	var body wire.Encoder
	body.Bytes(primary[:])
	body.U64(epoch)
	body.U64(lastSeq)
	body.U64(uint64(reports))
	body.Bytes(nonceRaw)
	signedPart := body.Encode()
	sig := self.SignMessage(signedPart)
	var e wire.Encoder
	e.Bytes(signedPart).Bytes(self.Sign.Public).Bytes(sig)
	sealedResp, err := pkc.Seal(requestorAP, e.Encode(), nil)
	if err != nil {
		return
	}
	_ = n.sendThroughOnion(replyOnion, wire.TReplStatusResp, sealedResp)
}

// handleReplStatusResp routes a replication-status answer to the waiting
// probe.
func (n *Node) handleReplStatusResp(sealed []byte) {
	_, plain, ok := n.openAny(sealed)
	if !ok {
		return
	}
	d := wire.NewDecoder(plain)
	signedPart := d.Bytes()
	agentSP := d.Bytes()
	sig := d.Bytes()
	if d.Finish() != nil {
		return
	}
	if len(agentSP) != ed25519.PublicKeySize || !pkc.Verify(ed25519.PublicKey(agentSP), signedPart, sig) {
		return
	}
	b := wire.NewDecoder(signedPart)
	primaryRaw := b.Bytes()
	epoch := b.U64()
	lastSeq := b.U64()
	reports := b.U64()
	nonceRaw := b.Bytes()
	if b.Finish() != nil || len(primaryRaw) != pkc.NodeIDSize || len(nonceRaw) != pkc.NonceSize {
		return
	}
	var primary pkc.NodeID
	var nonce pkc.Nonce
	copy(primary[:], primaryRaw)
	copy(nonce[:], nonceRaw)
	n.mu.Lock()
	ch := n.pendingStatus[nonce]
	n.mu.Unlock()
	if ch != nil {
		select {
		case ch <- ReplStatus{Primary: primary, Epoch: epoch, LastSeq: lastSeq, Reports: int64(reports)}:
		default:
		}
	}
}

// PromoteReplica performs stateful backup promotion for a dead primary
// (§3.4.3 extended by DESIGN.md §10): probe every backup's replication
// status for primary, cache positions in book, then promote the
// most-caught-up healthy backup — after instructing it to reconcile with the
// surviving replicas, so it serves the primary's tallies immediately.
func (n *Node) PromoteReplica(book *AgentBook, primary pkc.NodeID, replyOnion *onion.Onion) (pkc.NodeID, bool) {
	type candidate struct {
		id   pkc.NodeID
		info AgentInfo
		seq  uint64
	}
	var cands []candidate
	for _, id := range book.Backups() {
		info, ok := book.BackupInfo(id)
		if !ok {
			continue
		}
		allow, probe := book.Allow(id)
		if !allow {
			continue
		}
		if probe {
			n.cnt.breakerHalf.Inc()
		}
		status, err := n.ReplicationStatus(info, primary, false, replyOnion, n.probeTimeout())
		if err != nil {
			n.noteFailure(book, id)
			continue
		}
		n.noteSuccess(book, id)
		book.NoteReplicaSeq(id, primary, status.LastSeq)
		cands = append(cands, candidate{id: id, info: info, seq: status.LastSeq})
	}
	// Most-caught-up first; the stable sort keeps recency order among ties.
	// A candidate that fails its reconcile instruction — or vanished from
	// the backup cache since probing — must not abandon the failover while
	// promotable candidates remain.
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].seq > cands[j].seq })
	for _, c := range cands {
		if _, err := n.ReplicationStatus(c.info, primary, true, replyOnion, n.timeout()); err != nil {
			n.noteFailure(book, c.id)
			continue
		}
		if !book.Restore(c.id) {
			continue
		}
		n.cnt.failovers.Inc()
		return c.id, true
	}
	return pkc.NodeID{}, false
}
