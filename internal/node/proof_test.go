package node

import (
	"testing"
	"time"

	"hirep/internal/pkc"
	"hirep/internal/proof"
)

// proofFleet starts a live loopback topology for proof tests: one evidence-
// retaining agent, one requestor, one edge (non-agent with a proof cache),
// and two relays. Only the agent retains evidence; the edge's role is
// configured per test.
func proofFleet(t *testing.T) (agent, requestor, edge *Node, relays []*Node) {
	t.Helper()
	mk := func(opts Options) *Node {
		opts.Timeout = 5 * time.Second
		nd, err := Listen("127.0.0.1:0", opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = nd.Close() })
		return nd
	}
	agent = mk(Options{Agent: true, EvidenceCap: 64})
	requestor = mk(Options{})
	edge = mk(Options{ProofCache: 16})
	relays = []*Node{mk(Options{}), mk(Options{})}
	return agent, requestor, edge, relays
}

// seedReports files count positive reports about subject with the agent over
// the live protocol, from reporter.
func seedReports(t *testing.T, reporter *Node, info AgentInfo, subject pkc.NodeID, count int, agentNode *Node) {
	t.Helper()
	repOnion, err := reporter.BuildOnion(fetchRoute(t, reporter, []*Node{agentNode}))
	if err != nil {
		t.Fatal(err)
	}
	// A trust request first, so the agent learns the reporter's key (§3.5.2).
	if _, _, err := reporter.RequestTrust(info, subject, repOnion); err != nil {
		t.Fatal(err)
	}
	before := agentNode.Agent().ReportCount()
	for i := 0; i < count; i++ {
		if err := reporter.ReportTransaction(info, subject, true); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return agentNode.Agent().ReportCount() == before+count })
}

// TestProofEndToEndAudit is the §14 audit story over live TCP and onions: an
// honest agent's bundle verifies Matching; after the tamper hook makes the
// same agent sign an inflated tally, the requestor's verification returns a
// provably-lying verdict attributed to the agent's key — with the verdict
// visible in both sides' counters.
func TestProofEndToEndAudit(t *testing.T) {
	agentNode, requestor, _, relays := proofFleet(t)
	agentOnion, err := agentNode.BuildOnion(fetchRoute(t, agentNode, relays[:1]))
	if err != nil {
		t.Fatal(err)
	}
	info := agentNode.Info(agentOnion)
	subject, _ := pkc.NewIdentity(nil)
	seedReports(t, requestor, info, subject.ID, 3, agentNode)

	reqOnion, err := requestor.BuildOnion(fetchRoute(t, requestor, relays[1:2]))
	if err != nil {
		t.Fatal(err)
	}
	b, res, err := requestor.RequestTrustProven(info, subject.ID, reqOnion)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != proof.Matching || b.Pos != 3 || b.Neg != 0 {
		t.Fatalf("honest agent: verdict %v (%s), tally %d/%d", res.Verdict, res.Reason, b.Pos, b.Neg)
	}
	if b.AgentID() != agentNode.ID() {
		t.Fatal("bundle not attributed to the serving agent")
	}

	// The agent turns dishonest: it signs bundles claiming two extra
	// positives its own evidence does not back.
	agentNode.SetProofTamper(func(b *proof.Bundle) { b.Pos += 2 })
	b2, res2, err := requestor.RequestTrustProven(info, subject.ID, reqOnion)
	if err != nil {
		t.Fatalf("lying bundle must still verify (it is authenticated): %v", err)
	}
	if res2.Verdict != proof.Lying {
		t.Fatalf("tampered agent: verdict %v (%s)", res2.Verdict, res2.Reason)
	}
	// The evidence recomputation still yields the true tally: the querier
	// walks away with the correct answer AND proof of the lie.
	if res2.Pos != 3 || b2.AgentID() != agentNode.ID() {
		t.Fatalf("audit: recomputed %d, attributed to %v", res2.Pos, b2.AgentID())
	}

	as, rs := agentNode.Stats(), requestor.Stats()
	if as.ProofsServed < 2 {
		t.Fatalf("agent ProofsServed = %d", as.ProofsServed)
	}
	if rs.ProofsVerified < 2 || rs.ProofsLying != 1 {
		t.Fatalf("requestor verdict counters: verified=%d lying=%d", rs.ProofsVerified, rs.ProofsLying)
	}
}

func TestProofSnapshotEndToEnd(t *testing.T) {
	agentNode, requestor, _, relays := proofFleet(t)
	agentOnion, err := agentNode.BuildOnion(fetchRoute(t, agentNode, relays[:1]))
	if err != nil {
		t.Fatal(err)
	}
	info := agentNode.Info(agentOnion)
	subject, _ := pkc.NewIdentity(nil)
	seedReports(t, requestor, info, subject.ID, 4, agentNode)

	reqOnion, err := requestor.BuildOnion(fetchRoute(t, requestor, relays[1:2]))
	if err != nil {
		t.Fatal(err)
	}
	ts, err := requestor.RequestTrustSnapshot(info, subject.ID, reqOnion)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Pos != 4 || ts.Neg != 0 || ts.AgentID() != agentNode.ID() {
		t.Fatalf("snapshot %d/%d from %v", ts.Pos, ts.Neg, ts.AgentID())
	}
	if want := 5.0 / 6.0; float64(ts.Trust()) != want {
		t.Fatalf("snapshot trust %v, want %v", ts.Trust(), want)
	}
	if ts.Expires <= uint64(time.Now().Add(-time.Second).Unix()) {
		t.Fatal("snapshot already expired at issue")
	}
}

// TestProofEdgeCacheZeroAgentRoundTrips pins the edge-cache serving claim: a
// requestor pointed at a non-agent edge gets a verifying bundle, and once the
// edge holds the payload, repeat reads touch the agent zero times — its
// ProofsServed counter stays flat while the edge's cache-hit counter climbs.
func TestProofEdgeCacheZeroAgentRoundTrips(t *testing.T) {
	agentNode, requestor, edge, relays := proofFleet(t)
	agentOnion, err := agentNode.BuildOnion(fetchRoute(t, agentNode, relays[:1]))
	if err != nil {
		t.Fatal(err)
	}
	agentInfo := agentNode.Info(agentOnion)
	subject, _ := pkc.NewIdentity(nil)
	seedReports(t, requestor, agentInfo, subject.ID, 5, agentNode)

	// The edge publishes its own onion and forwards misses to the agent
	// through a reply onion of its own.
	edgeOnion, err := edge.BuildOnion(fetchRoute(t, edge, relays[1:2]))
	if err != nil {
		t.Fatal(err)
	}
	edgeFwd, err := edge.BuildOnion(fetchRoute(t, edge, relays[:1]))
	if err != nil {
		t.Fatal(err)
	}
	if err := edge.ConfigureProofEdge(agentInfo, edgeFwd); err != nil {
		t.Fatal(err)
	}
	edgeInfo := edge.Info(edgeOnion)

	reqOnion, err := requestor.BuildOnion(fetchRoute(t, requestor, relays[1:2]))
	if err != nil {
		t.Fatal(err)
	}
	// Cold cache: the edge forwards to the agent once.
	b, res, err := requestor.RequestTrustProven(edgeInfo, subject.ID, reqOnion)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != proof.Matching || b.Pos != 5 {
		t.Fatalf("through edge: verdict %v, tally %d", res.Verdict, b.Pos)
	}
	// The bundle stays attributed to the AGENT even though the edge served it.
	if b.AgentID() != agentNode.ID() {
		t.Fatal("edge-served bundle not attributed to the issuing agent")
	}
	servedAfterCold := agentNode.Stats().ProofsServed
	if servedAfterCold == 0 {
		t.Fatal("cold read did not reach the agent")
	}

	// Warm cache: repeat reads are served entirely by the edge.
	const repeats = 3
	for i := 0; i < repeats; i++ {
		b, res, err = requestor.RequestTrustProven(edgeInfo, subject.ID, reqOnion)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != proof.Matching || b.Pos != 5 {
			t.Fatalf("warm read %d: verdict %v, tally %d", i, res.Verdict, b.Pos)
		}
	}
	if served := agentNode.Stats().ProofsServed; served != servedAfterCold {
		t.Fatalf("warm reads reached the agent: ProofsServed %d -> %d", servedAfterCold, served)
	}
	es := edge.Stats()
	if es.ProofCacheHits < repeats || es.ProofsServed < repeats {
		t.Fatalf("edge counters: hits=%d served=%d, want >= %d", es.ProofCacheHits, es.ProofsServed, repeats)
	}

	// Snapshots ride the same cache, keyed separately from bundles.
	ts, err := requestor.RequestTrustSnapshot(edgeInfo, subject.ID, reqOnion)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Pos != 5 || ts.AgentID() != agentNode.ID() {
		t.Fatalf("snapshot via edge: %d positives from %v", ts.Pos, ts.AgentID())
	}
	servedSnap := agentNode.Stats().ProofsServed
	if _, err := requestor.RequestTrustSnapshot(edgeInfo, subject.ID, reqOnion); err != nil {
		t.Fatal(err)
	}
	if served := agentNode.Stats().ProofsServed; served != servedSnap {
		t.Fatal("warm snapshot read reached the agent")
	}
}

// TestProofEvidenceCapRequiresAgent pins the Options validation: retention
// without an agent is a configuration error, not a silent no-op.
func TestProofEvidenceCapRequiresAgent(t *testing.T) {
	if _, err := Listen("127.0.0.1:0", Options{EvidenceCap: 8}); err == nil {
		t.Fatal("EvidenceCap without Agent accepted")
	}
}

// TestProofAgentMemoizesAssembly: an agent given its own proof cache serves
// repeat bundle reads from it instead of re-assembling and re-signing.
func TestProofAgentMemoizesAssembly(t *testing.T) {
	mk := func(opts Options) *Node {
		opts.Timeout = 5 * time.Second
		nd, err := Listen("127.0.0.1:0", opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = nd.Close() })
		return nd
	}
	agentNode := mk(Options{Agent: true, EvidenceCap: 16, ProofCache: 8})
	requestor := mk(Options{})
	relay := mk(Options{})
	agentOnion, err := agentNode.BuildOnion(fetchRoute(t, agentNode, []*Node{relay}))
	if err != nil {
		t.Fatal(err)
	}
	info := agentNode.Info(agentOnion)
	subject, _ := pkc.NewIdentity(nil)
	seedReports(t, requestor, info, subject.ID, 2, agentNode)

	reqOnion, err := requestor.BuildOnion(fetchRoute(t, requestor, []*Node{relay}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, res, err := requestor.RequestTrustProven(info, subject.ID, reqOnion); err != nil || res.Verdict != proof.Matching {
			t.Fatalf("read %d: %v %v", i, res.Verdict, err)
		}
	}
	s := agentNode.Stats()
	if s.ProofCacheHits != 2 || s.ProofCacheMisses != 1 {
		t.Fatalf("agent memoization: hits=%d misses=%d, want 2/1", s.ProofCacheHits, s.ProofCacheMisses)
	}
}

// TestProofCachePutSemantics pins the two cache-entry contracts callers rely
// on: an overwrite refreshes the key's eviction-order slot (a re-fetched hot
// entry must not be evicted as "oldest"), and the explicit expires wins over
// any notion of insertion-time TTL — the edge path caps it at the snapshot's
// embedded validity.
func TestProofCachePutSemantics(t *testing.T) {
	now := time.Now()
	c := newProofCache(2, time.Minute)
	c.put("a", []byte("a1"), now.Add(time.Minute))
	c.put("b", []byte("b1"), now.Add(time.Minute))
	// Overwrite "a": it must move behind "b" in eviction order.
	c.put("a", []byte("a2"), now.Add(time.Minute))
	c.put("c", []byte("c1"), now.Add(time.Minute)) // evicts the true oldest: "b"
	if _, ok := c.get("b", now); ok {
		t.Fatal("overwrite did not refresh eviction order: stale key outlived hot key")
	}
	if p, ok := c.get("a", now); !ok || string(p) != "a2" {
		t.Fatalf("refreshed entry lost: %q %v", p, ok)
	}
	if len(c.m) != 2 || len(c.order) != 2 {
		t.Fatalf("cache size drifted: map=%d order=%d", len(c.m), len(c.order))
	}

	// Explicit expiry is honored exactly: a payload whose embedded validity
	// ends before the cache TTL must miss once that moment passes.
	c.put("s", []byte("snap"), now.Add(10*time.Second))
	if _, ok := c.get("s", now.Add(9*time.Second)); !ok {
		t.Fatal("entry expired early")
	}
	if _, ok := c.get("s", now.Add(11*time.Second)); ok {
		t.Fatal("entry served past its explicit expiry")
	}
}
