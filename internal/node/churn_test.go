package node

import (
	"math"
	"testing"

	"hirep/internal/pkc"
	"hirep/internal/resilience"
)

// TestDeferredReportResignedAfterKeyRotation audits the outbox flush path
// against §3.5 key rotation: a report deferred under the peer's OLD identity
// must be delivered re-signed with the POST-rotation key, and accepted by an
// agent that merged the old nodeID — the deferred payload stores only the
// report parameters, and delivery signs fresh with whatever identity the node
// holds at flush time.
func TestDeferredReportResignedAfterKeyRotation(t *testing.T) {
	a := mkReplNode(t, nil, true, "", nil, 64)
	relay := mkReplNode(t, nil, false, "", nil, 64)
	peer := mkReplNode(t, nil, false, "", nil, 64)

	o, err := a.BuildOnion(fetchRoute(t, a, []*Node{relay}))
	if err != nil {
		t.Fatal(err)
	}
	infoA := a.Info(o)
	replyOnion, err := peer.BuildOnion(fetchRoute(t, peer, []*Node{relay}))
	if err != nil {
		t.Fatal(err)
	}

	book, err := NewAgentBook(3, 0.3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if !book.Add(infoA) {
		t.Fatal("Add failed")
	}
	book.SetQuorum(1)
	peer.AttachBook(book)

	subject, _ := pkc.NewIdentity(nil)

	// Baseline exchange registers the peer's pre-rotation key with the agent
	// (§3.5.2) — the precondition for the rotation to verify later.
	if _, _, err := peer.RequestTrust(infoA, subject.ID, replyOnion); err != nil {
		t.Fatal(err)
	}
	if !a.Agent().KnowsKey(peer.ID()) {
		t.Fatal("baseline exchange did not register the peer's key")
	}

	// Open the agent's breaker by decree (the agent itself stays reachable, so
	// the rotation announcement can still get through): the next report is
	// deferred, signed by nobody yet.
	book.RecordFailure(infoA.ID())
	if !book.RecordFailure(infoA.ID()) {
		t.Fatal("breaker did not trip")
	}
	if err := peer.reportOrDefer(book, infoA, subject.ID, true); err != nil {
		t.Fatal(err)
	}
	if d := peer.OutboxDepth(); d != 1 {
		t.Fatalf("outbox depth %d, want 1", d)
	}
	if got := a.Agent().ReportCount(); got != 0 {
		t.Fatalf("report delivered despite open breaker: count %d", got)
	}

	// Rotate while the report sits deferred. The agent merges old → new: the
	// old key is deleted, so only a report signed with the successor key can
	// be accepted from here on.
	oldID, newID, err := peer.RotateIdentity([]AgentInfo{infoA})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		return a.Agent().KnowsKey(newID) && !a.Agent().KnowsKey(oldID)
	})

	// Close the breaker and drain: delivery must re-sign with the new
	// identity, and the merged agent must accept it.
	book.RecordSuccess(infoA.ID())
	peer.kickFlush()
	waitFor(t, func() bool { return a.Agent().ReportCount() == 1 })
	waitFor(t, func() bool { return peer.OutboxDepth() == 0 })

	if s := peer.Stats(); s.ReportsLost != 0 || s.ReportsDeferred != 1 {
		t.Fatalf("deferred=%d lost=%d, want 1/0", s.ReportsDeferred, s.ReportsLost)
	}
	if got := peer.Metrics().Snapshot()["node_outbox_sent_total"]; got != 1 {
		t.Fatalf("outbox sent = %d, want 1", got)
	}
	// The report counts toward the subject under the continuous identity.
	v, ok := a.Agent().TrustValue(subject.ID)
	if !ok || math.Abs(float64(v)-2.0/3.0) > 1e-9 {
		t.Fatalf("post-rotation trust = %v (ok=%v), want 2/3", v, ok)
	}
}

// TestLiveFleetSurvivesRelayChurn wires internal/sim's churn model into the
// live fleet: where the simulation sweeps OfflineProb over peers going dark
// mid-protocol, here the report route's relay flaps offline (observable
// refused dials, FaultDrop) in alternating phases while transaction traffic
// keeps flowing. Every report sent during an offline phase must be deferred —
// never lost — and after each revival the deferred/sent counters must
// reconcile exactly: lost == 0 and outbox_sent == deferred.
func TestLiveFleetSurvivesRelayChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("live churn test")
	}
	fd := resilience.NewFaultDialer(nil, 7)
	a := mkReplNode(t, fd, true, t.TempDir(), nil, 64)
	relay := mkReplNode(t, fd, false, "", nil, 64)
	peer := mkReplNode(t, fd, false, "", nil, 64)

	o, err := a.BuildOnion(fetchRoute(t, a, []*Node{relay}))
	if err != nil {
		t.Fatal(err)
	}
	infoA := a.Info(o)
	replyOnion, err := peer.BuildOnion(fetchRoute(t, peer, []*Node{relay}))
	if err != nil {
		t.Fatal(err)
	}

	book, err := NewAgentBook(3, 0.3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if !book.Add(infoA) {
		t.Fatal("Add failed")
	}
	book.SetQuorum(1)
	peer.AttachBook(book)

	subject, _ := pkc.NewIdentity(nil)
	if _, _, err := peer.RequestTrust(infoA, subject.ID, replyOnion); err != nil {
		t.Fatal(err)
	}

	sent := 0
	const cycles, perPhase = 3, 3
	for cycle := 0; cycle < cycles; cycle++ {
		// Online phase: reports flow live through the relay.
		for i := 0; i < perPhase; i++ {
			if err := peer.reportOrDefer(book, infoA, subject.ID, true); err != nil {
				t.Fatalf("cycle %d live report %d: %v", cycle, i, err)
			}
			sent++
		}
		waitFor(t, func() bool { return a.Agent().ReportCount() == sent })

		// Churn: the relay process dies — established connections reset and
		// new dials fail, the observable failure mode the simulation's
		// OfflineProb models. The first failures trip the agent's breaker
		// (the peer cannot tell a dead relay from a dead agent through an
		// onion) and every report of the phase lands in the outbox.
		fd.SetRule(relay.Addr(), resilience.FaultRule{Mode: resilience.FaultReset})
		for i := 0; i < perPhase; i++ {
			_ = peer.reportOrDefer(book, infoA, subject.ID, true) // send error expected
			sent++
		}
		if got := a.Agent().ReportCount(); got != sent-perPhase {
			t.Fatalf("cycle %d: reports leaked through a dead relay: %d", cycle, got)
		}

		// Revival: the relay returns; probing restores the demoted agent and
		// the flusher drains the backlog.
		fd.Clear(relay.Addr())
		waitFor(t, func() bool {
			if book.BreakerState(infoA.ID()) == resilience.BreakerClosed && book.Len() == 1 {
				return true
			}
			for _, id := range peer.ProbeBackups(book, replyOnion) {
				if id == infoA.ID() {
					return true
				}
			}
			return false
		})
		waitFor(t, func() bool { return peer.OutboxDepth() == 0 })
		waitFor(t, func() bool { return a.Agent().ReportCount() == sent })
	}

	s := peer.Stats()
	if s.ReportsLost != 0 {
		t.Fatalf("ReportsLost = %d, churn must defer, not drop", s.ReportsLost)
	}
	if want := int64(cycles * perPhase); s.ReportsDeferred != want {
		t.Fatalf("ReportsDeferred = %d, want %d", s.ReportsDeferred, want)
	}
	snap := peer.Metrics().Snapshot()
	if got := snap["node_outbox_sent_total"]; int64(got) != s.ReportsDeferred {
		t.Fatalf("outbox_sent %d != deferred %d: counters do not reconcile", got, s.ReportsDeferred)
	}
	if got := a.Agent().ReportCount(); got != sent {
		t.Fatalf("agent stored %d, fleet sent %d", got, sent)
	}
}
