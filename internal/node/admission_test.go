package node

import (
	"bytes"
	"testing"
	"time"

	"hirep/internal/agentdir"
	"hirep/internal/onion"
	"hirep/internal/pkc"
	"hirep/internal/wire"
)

// admissionPair builds the standard batched-ingest fixture with the agent's
// sybil-admission gate armed at a test-friendly difficulty (2^8 hashes ≈
// instant to solve, impossible to pass by luck with a zero solution).
func admissionPair(t *testing.T) (agentNode, peer *Node, info AgentInfo, replyOnion *onion.Onion) {
	t.Helper()
	return batchPair(t, Options{AdmissionPoWBits: 8})
}

// TestAdmissionBounceNotStored pins the gate's core promise: a batch from an
// unadmitted identity carrying no proof of work is bounced whole with
// StatusAdmissionRequired — nothing stored, no identity admitted, and the ack
// names the demanded difficulty so the sender can mint a solution.
func TestAdmissionBounceNotStored(t *testing.T) {
	agentNode, peer, info, replyOnion := admissionPair(t)
	subject, _ := pkc.NewIdentity(nil)
	reports := []BatchReport{
		{Subject: subject.ID, Positive: true},
		{Subject: subject.ID, Positive: false},
	}
	ack, err := peer.reportBatchOnce(info, reports, replyOnion, nil, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ack.bits != 8 {
		t.Fatalf("ack demanded %d bits, want 8", ack.bits)
	}
	for i, st := range ack.statuses {
		if st != StatusAdmissionRequired {
			t.Fatalf("report %d acked %v, want admission-required", i, st)
		}
	}
	if got := agentNode.Agent().ReportCount(); got != 0 {
		t.Fatalf("agent stored %d reports from an unadmitted identity", got)
	}
	if got := agentNode.AdmittedIdentities(); got != 0 {
		t.Fatalf("agent admitted %d identities without a solution", got)
	}
	as := agentNode.Stats()
	if as.AdmissionRequired != int64(len(reports)) {
		t.Fatalf("AdmissionRequired = %d, want %d", as.AdmissionRequired, len(reports))
	}
	if as.ReportBatches != 0 {
		t.Fatalf("unadmitted batch reached the verification pool (%d batches run)", as.ReportBatches)
	}
}

// TestAdmissionAutoSolveStored drives the full retry loop: ReportBatch sends
// without a solution, absorbs the admission bounce, mints a proof bound to
// its nodeID, and resends — every report must land, the identity must hold an
// admission, and a second batch must ride the standing admission without
// paying again.
func TestAdmissionAutoSolveStored(t *testing.T) {
	agentNode, peer, info, replyOnion := admissionPair(t)
	subject, _ := pkc.NewIdentity(nil)
	const n = 10
	reports := make([]BatchReport, n)
	for i := range reports {
		reports[i] = BatchReport{Subject: subject.ID, Positive: i%2 == 0}
	}
	statuses, err := peer.ReportBatch(info, reports, replyOnion)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range statuses {
		if st != StatusStored {
			t.Fatalf("report %d acked %v, want stored", i, st)
		}
	}
	if got := agentNode.Agent().ReportCount(); got != n {
		t.Fatalf("agent stored %d reports, want %d", got, n)
	}
	if got := agentNode.AdmittedIdentities(); got != 1 {
		t.Fatalf("agent admitted %d identities, want 1", got)
	}
	ps := peer.Stats()
	if ps.AdmissionSolved != 1 || ps.AdmissionWork == 0 {
		t.Fatalf("sender solved=%d work=%d, want 1 solve with nonzero work", ps.AdmissionSolved, ps.AdmissionWork)
	}
	as := agentNode.Stats()
	if as.AdmissionAdmitted != 1 {
		t.Fatalf("AdmissionAdmitted = %d, want 1", as.AdmissionAdmitted)
	}

	// Second batch from the now-admitted identity: no fresh solve.
	if _, err := peer.ReportBatch(info, reports[:1], replyOnion); err != nil {
		t.Fatal(err)
	}
	if got := peer.Stats().AdmissionSolved; got != 1 {
		t.Fatalf("admitted identity re-solved (%d solves, want 1)", got)
	}
	if got := agentNode.Agent().ReportCount(); got != n+1 {
		t.Fatalf("agent stored %d reports, want %d", got, n+1)
	}
}

// TestAdmissionSolveLimitDefers pins the CPU-burn defense: when an agent
// demands a difficulty beyond the sender's solve limit, ReportBatch must not
// mint (no hashes spent) and must surface the admission-required statuses so
// the caller can defer.
func TestAdmissionSolveLimitDefers(t *testing.T) {
	agentNode, peer, info, replyOnion := admissionPair(t)
	peer.mu.Lock()
	peer.opts.AdmissionSolveLimit = 4 // below the agent's demanded 8
	peer.mu.Unlock()
	subject, _ := pkc.NewIdentity(nil)
	statuses, err := peer.ReportBatch(info, []BatchReport{{Subject: subject.ID, Positive: true}}, replyOnion)
	if err != nil {
		t.Fatal(err)
	}
	if !allAdmissionRequired(statuses) {
		t.Fatalf("statuses %v, want all admission-required", statuses)
	}
	if got := peer.Stats().AdmissionSolved; got != 0 {
		t.Fatalf("sender solved %d proofs beyond its limit, want 0", got)
	}
	if got := agentNode.Agent().ReportCount(); got != 0 {
		t.Fatalf("agent stored %d reports, want 0", got)
	}
}

// TestAdmissionMixedBatchAfterAdmit shows the gate composing with per-report
// verdicts: once admitted, a crafted batch mixing a valid report with a
// malformed wire still gets per-report statuses — admission is a batch-level
// gate, not a substitute for report verification.
func TestAdmissionMixedBatchAfterAdmit(t *testing.T) {
	agentNode, peer, info, replyOnion := admissionPair(t)
	subject, _ := pkc.NewIdentity(nil)
	// Admit via the normal path first.
	if _, err := peer.ReportBatch(info, []BatchReport{{Subject: subject.ID, Positive: true}}, replyOnion); err != nil {
		t.Fatal(err)
	}
	self := peer.identity()
	rn, _ := pkc.NewNonce(nil)
	wires := [][]byte{
		agentdir.SignReport(self, subject.ID, true, rn),
		[]byte("not a report"),
	}
	nonce, _ := pkc.NewNonce(nil)
	sealed, err := pkc.Seal(info.AP, encodeReportBatch(self, nonce, replyOnion, wires, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan batchAck, 1)
	peer.mu.Lock()
	peer.pendingAcks[nonce] = &batchAckWait{sp: info.SP, count: len(wires), ch: ch}
	peer.mu.Unlock()
	if err := peer.sendThroughOnion(info.Onion, wire.TReportBatch, sealed); err != nil {
		t.Fatal(err)
	}
	var ack batchAck
	select {
	case ack = <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("no batch ack arrived")
	}
	want := []ReportStatus{StatusStored, StatusMalformed}
	for i, st := range ack.statuses {
		if st != want[i] {
			t.Fatalf("report %d acked %v, want %v", i, st, want[i])
		}
	}
	if got := agentNode.Agent().ReportCount(); got != 2 {
		t.Fatalf("agent stored %d reports, want 2", got)
	}
}

// TestAdmissionReplayedSolutionRejected pins the spent-solution cache: a
// solution that admitted an identity once cannot re-admit it after
// revocation, while a freshly minted one can.
func TestAdmissionReplayedSolutionRejected(t *testing.T) {
	g := newAdmissionGate(8, 0, 64, 16)
	id, _ := pkc.NewIdentity(nil)
	sol, _, err := pkc.MintAdmission(id.ID, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := g.check(id.ID, sol[:], 1); v != admissionNewlyOK {
		t.Fatalf("first use verdict %d, want newly-ok", v)
	}
	g.forget(id.ID)
	if v := g.check(id.ID, sol[:], 1); v != admissionReplay {
		t.Fatalf("replayed solution verdict %d, want replay", v)
	}
	fresh, _, err := pkc.MintAdmission(id.ID, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(fresh[:], sol[:]) {
		t.Fatal("mint returned the same solution twice")
	}
	if v := g.check(id.ID, fresh[:], 1); v != admissionNewlyOK {
		t.Fatalf("fresh solution verdict %d, want newly-ok", v)
	}
}

// TestAdmissionRateRevokes pins the per-identity rate accounting: an admitted
// identity that outruns its token bucket loses the admission — sustained
// flooding costs one proof of work per burst, not one ever.
func TestAdmissionRateRevokes(t *testing.T) {
	g := newAdmissionGate(8, 1 /* report/sec */, 10, 16)
	base := time.Now()
	g.now = func() time.Time { return base }
	id, _ := pkc.NewIdentity(nil)
	sol, _, err := pkc.MintAdmission(id.ID, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := g.check(id.ID, sol[:], 8); v != admissionNewlyOK {
		t.Fatalf("verdict %d, want newly-ok", v)
	}
	// 2 tokens left, 8 demanded: over the rate — admission revoked.
	if v := g.check(id.ID, nil, 8); v != admissionThrottled {
		t.Fatalf("verdict %d, want throttled", v)
	}
	if got := g.admittedCount(); got != 0 {
		t.Fatalf("admitted count %d after revocation, want 0", got)
	}
	// The old solution is spent; only fresh work re-admits.
	if v := g.check(id.ID, sol[:], 1); v != admissionReplay {
		t.Fatalf("verdict %d, want replay", v)
	}
	fresh, _, _ := pkc.MintAdmission(id.ID, 8, nil)
	if v := g.check(id.ID, fresh[:], 1); v != admissionNewlyOK {
		t.Fatalf("verdict %d, want newly-ok after fresh solve", v)
	}
	// Idle time refills the bucket: after 10s at 1/sec the full burst is back.
	base = base.Add(10 * time.Second)
	if v := g.check(id.ID, nil, 10); v != admissionOK {
		t.Fatalf("verdict %d, want ok after refill", v)
	}
	if got := g.reportsBy(id.ID); got != 11 {
		t.Fatalf("reportsBy = %d, want 11", got)
	}
}

// TestAdmissionGateEviction pins the FIFO cap: the gate remembers at most cap
// identities, evicting the oldest, and a disabled gate is nil.
func TestAdmissionGateEviction(t *testing.T) {
	if g := newAdmissionGate(0, 0, 0, 0); g != nil {
		t.Fatal("difficulty 0 must disable the gate")
	}
	g := newAdmissionGate(4, 0, 8, 2)
	var first pkc.NodeID
	for i := 0; i < 3; i++ {
		id, _ := pkc.NewIdentity(nil)
		if i == 0 {
			first = id.ID
		}
		sol, _, err := pkc.MintAdmission(id.ID, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		if v := g.check(id.ID, sol[:], 1); v != admissionNewlyOK {
			t.Fatalf("identity %d verdict %d, want newly-ok", i, v)
		}
	}
	if got := g.admittedCount(); got != 2 {
		t.Fatalf("admitted count %d, want cap 2", got)
	}
	if g.reportsBy(first) != 0 {
		t.Fatal("oldest identity survived FIFO eviction")
	}
}

// FuzzDecodeAdmission throws arbitrary bytes at both admission-touched
// decoders — the batch decoder's trailing-optional solution and the ack
// decoder's trailing-optional difficulty. Neither may panic, and accepted
// values must be in range.
func FuzzDecodeAdmission(f *testing.F) {
	self, err := pkc.NewIdentity(nil)
	if err != nil {
		f.Fatal(err)
	}
	var subject pkc.NodeID
	nonce, _ := pkc.NewNonce(nil)
	ro := &onion.Onion{Entry: "127.0.0.1:1", Blob: []byte{1, 2, 3}, Seq: 1, Sig: []byte{4}}
	wires := [][]byte{agentdir.SignReport(self, subject, true, nonce)}
	sol, _, _ := pkc.MintAdmission(self.ID, 4, nil)
	f.Add(encodeReportBatch(self, nonce, ro, wires, sol[:]))
	f.Add(encodeBatchAck(self, nonce, []ReportStatus{StatusAdmissionRequired}, 12))
	f.Add(encodeBatchAck(self, nonce, []ReportStatus{StatusStored}, 0))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if b, err := decodeReportBatch(data); err == nil {
			if b.sol != nil && len(b.sol) != pkc.AdmissionSolutionSize {
				t.Fatalf("accepted solution of %d bytes", len(b.sol))
			}
		}
		if a, err := decodeBatchAck(data); err == nil {
			if a.bits < 0 || a.bits > 256 {
				t.Fatalf("accepted difficulty %d", a.bits)
			}
		}
	})
}
