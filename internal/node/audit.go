package node

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"time"

	"hirep/internal/agentdir"
	"hirep/internal/audit"
	"hirep/internal/onion"
	"hirep/internal/pkc"
	"hirep/internal/proof"
	"hirep/internal/resilience"
	"hirep/internal/wire"
)

// This file is the node side of the self-healing trust plane (DESIGN.md §15,
// internal/audit): a background auditor that proactively samples subjects
// across the attached book's agents over the TProofReq path, verifies the
// returned bundles, cross-checks a second agent to catch divergence a single
// self-consistent bundle hides, and turns provable lies into signed audit
// advisories gossiped to the node's neighbors. Received advisories are
// re-verified end to end before the book acts on them — the advisory carries
// the offending bundle, so trust in the sender is never required.

const (
	defaultAuditSample              = 4
	defaultAuditQuarantineThreshold = 3
	// auditSubjectPoolCap bounds the rotating pool of subjects the sweep
	// samples from (fed by EvaluateSubject and NoteAuditSubjects).
	auditSubjectPoolCap = 256
	// advisorySeenCap bounds gossip dedup state; advisoryLogCap the log of
	// advisories this node verified (issued or accepted).
	advisorySeenCap = 1024
	advisoryLogCap  = 64
	// Slander thresholds: a reporter needs at least slanderMinReports
	// accepted reports with at least slanderMinSkew of them negative before
	// it is flagged (a handful of honest negative reports is not slander).
	slanderMinReports = 8
	slanderMinSkew    = 0.9
)

// ErrNoAuditor is returned by AuditSweep when StartAuditor has not run.
var ErrNoAuditor = errors.New("node: auditor not started")

// auditor is the background audit state: the book under audit, the reply
// onion audit fetches answer through, and the per-accused evidence ledger
// behind the quarantine → eviction escalation.
type auditor struct {
	book       *AgentBook
	replyOnion *onion.Onion
	sample     int

	sweepMu sync.Mutex // one sweep at a time (ticker + manual calls)

	mu          sync.Mutex
	subjects    []pkc.NodeID // rotating sample pool, oldest first
	inPool      map[pkc.NodeID]bool
	skew        *audit.SkewTable
	slanderSeen map[pkc.NodeID]bool
}

// AdvisoryRecord is one advisory this node verified end to end — issued by
// its own auditor or accepted from gossip.
type AdvisoryRecord struct {
	Accused pkc.NodeID
	Auditor pkc.NodeID
	Reason  string // this node's own verification reason, not the sender's
	Issued  uint64
}

// StartAuditor attaches the audit sweep to book: probation probes and subject
// audits answer through replyOnion, verified lies quarantine (then evict) the
// offender and gossip a signed advisory to the node's neighbors. With
// Options.AuditInterval > 0 a background loop sweeps on that cadence;
// otherwise sweeps run only when AuditSweep is called (tests, operators).
// The book's quarantine threshold is set from Options.
func (n *Node) StartAuditor(book *AgentBook, replyOnion *onion.Onion) error {
	if book == nil || replyOnion == nil {
		return fmt.Errorf("node: auditor needs a book and a reply onion")
	}
	book.SetQuarantineThreshold(n.opts.AuditQuarantineThreshold)
	n.auditMu.Lock()
	if n.auditor != nil {
		n.auditMu.Unlock()
		return fmt.Errorf("node: auditor already started")
	}
	n.auditor = &auditor{
		book:        book,
		replyOnion:  replyOnion,
		sample:      n.opts.AuditSample,
		inPool:      make(map[pkc.NodeID]bool),
		skew:        audit.NewSkewTable(),
		slanderSeen: make(map[pkc.NodeID]bool),
	}
	n.auditMu.Unlock()
	if n.opts.AuditInterval > 0 {
		n.wg.Add(1)
		go n.auditLoop(n.opts.AuditInterval)
	}
	return nil
}

func (n *Node) auditLoop(interval time.Duration) {
	defer n.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-n.closeCh:
			return
		case <-t.C:
			_ = n.AuditSweep()
		}
	}
}

func (n *Node) currentAuditor() *auditor {
	n.auditMu.Lock()
	defer n.auditMu.Unlock()
	return n.auditor
}

// NoteAuditSubjects adds subjects to the auditor's rotating sample pool.
// EvaluateSubject feeds the pool automatically; this is the seam for seeding
// it directly (campaign harness, operators). A no-op before StartAuditor.
func (n *Node) NoteAuditSubjects(subjects ...pkc.NodeID) {
	a := n.currentAuditor()
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, s := range subjects {
		if a.inPool[s] {
			continue
		}
		if len(a.subjects) >= auditSubjectPoolCap {
			drop := a.subjects[0]
			a.subjects = a.subjects[1:]
			delete(a.inPool, drop)
		}
		a.subjects = append(a.subjects, s)
		a.inPool[s] = true
	}
}

// nextAuditSubjects takes up to k subjects off the front of the pool and
// rotates them to the back, so successive sweeps cycle the whole pool.
func (a *auditor) nextAuditSubjects(k int) []pkc.NodeID {
	a.mu.Lock()
	defer a.mu.Unlock()
	if k > len(a.subjects) {
		k = len(a.subjects)
	}
	out := append([]pkc.NodeID(nil), a.subjects[:k]...)
	a.subjects = append(a.subjects[k:], out...)
	return out
}

// AuditSweep runs one audit pass: probation probes of quarantined agents
// first, then up to Options.AuditSample sampled subjects, each fetched from
// its owning agent (placement-aware when a map is adopted) with retry/backoff
// under a per-sweep deadline and cross-checked against a second agent.
// Returns ErrNoAuditor before StartAuditor.
func (n *Node) AuditSweep() error {
	a := n.currentAuditor()
	if a == nil {
		return ErrNoAuditor
	}
	a.sweepMu.Lock()
	defer a.sweepMu.Unlock()
	if n.isClosed() {
		return ErrClosed
	}
	// The sweep budget is the audit interval when one is set (a sweep must
	// not outlast its cadence), floored at the request timeout so a tight
	// test cadence still allows one full-timeout fetch.
	budget := n.opts.AuditInterval
	if t := n.timeout(); budget < t {
		budget = t
	}
	deadline := time.Now().Add(budget)
	n.auditProbation(a, deadline)
	for _, subject := range a.nextAuditSubjects(a.sample) {
		if n.isClosed() || !time.Now().Before(deadline) {
			break
		}
		n.auditSubject(a, subject, deadline)
	}
	n.updateSlanderGauge(a)
	n.stats.auditSweeps.Add(1)
	n.cnt.auditSweeps.Inc()
	return nil
}

// auditProbation re-audits quarantined agents. A Lying probation bundle is a
// second piece of verified evidence — eviction. A Matching one does NOT
// rehabilitate: the agent got to quarantine on proof (or a full strike
// count), and honesty while under observation is exactly what a selectively
// lying agent would serve. Only suspects rehabilitate (in auditSubject).
func (n *Node) auditProbation(a *auditor, deadline time.Time) {
	for _, id := range a.book.Quarantined() {
		if n.isClosed() || !time.Now().Before(deadline) {
			return
		}
		info, ok := a.book.QuarantinedInfo(id)
		if !ok {
			continue
		}
		n.countAuditProbe()
		b, res, err := n.auditFetch(info, id, a.replyOnion, deadline)
		if err != nil || res.Verdict == proof.Partial {
			// Quarantined agents are outside the book's breaker accounting;
			// an unreachable one just stays quarantined.
			n.countAuditFailure()
			continue
		}
		if res.Verdict == proof.Lying {
			n.raiseAdvisory(a, b, res)
		}
	}
}

// auditSubject audits one sampled subject: fetch from the owning agent,
// verify, cross-check a second agent, act on the verdicts.
func (n *Node) auditSubject(a *auditor, subject pkc.NodeID, deadline time.Time) {
	primary, second, ok := n.auditTargets(a.book, subject)
	if !ok {
		return
	}
	n.countAuditProbe()
	b, res, err := n.auditFetch(primary, subject, a.replyOnion, deadline)
	if err != nil {
		// No verdict: a timeout or unreachable agent feeds the same breaker
		// accounting as any failed exchange — never the quarantine ladder, so
		// a flaky network cannot evict an honest agent.
		n.countAuditFailure()
		n.noteAuditUnreachable(a.book, primary.ID())
		return
	}
	if res.Verdict == proof.Lying {
		n.raiseAdvisory(a, b, res)
		return
	}
	n.noteSuccess(a.book, primary.ID())
	if res.Verdict == proof.Partial {
		// Declared-incomplete evidence proves nothing either way.
		n.countAuditFailure()
		return
	}
	// Matching: fold the evidence into the slander skew table, then
	// cross-check the same subject against a second agent — one agent's
	// self-consistent bundle can still under- or over-report what the rest
	// of the group holds.
	a.mu.Lock()
	a.skew.ObserveBundle(b)
	a.mu.Unlock()
	if second == nil || n.isClosed() || !time.Now().Before(deadline) {
		n.rehabilitateIfSuspect(a.book, primary.ID())
		return
	}
	n.countAuditProbe()
	b2, res2, err := n.auditFetch(*second, subject, a.replyOnion, deadline)
	if err != nil {
		n.countAuditFailure()
		n.noteAuditUnreachable(a.book, second.ID())
		n.rehabilitateIfSuspect(a.book, primary.ID())
		return
	}
	if res2.Verdict == proof.Lying {
		n.raiseAdvisory(a, b2, res2)
		return
	}
	n.noteSuccess(a.book, second.ID())
	if res2.Verdict == proof.Partial {
		n.countAuditFailure()
		n.rehabilitateIfSuspect(a.book, primary.ID())
		return
	}
	// Two Matching bundles for the same subject that recompute different
	// tallies: each is internally consistent, but at most one reflects the
	// group's report stream. Which one is wrong is not provable from here —
	// report propagation lags, replication gaps — so both take a suspect
	// strike, never an advisory.
	if res.Pos != res2.Pos || res.Neg != res2.Neg {
		n.stats.auditDiverged.Add(1)
		n.cnt.auditDiverged.Inc()
		n.markSuspect(a.book, primary.ID())
		n.markSuspect(a.book, second.ID())
		return
	}
	// Consistent, matching audits rehabilitate suspects.
	n.rehabilitateIfSuspect(a.book, primary.ID())
	n.rehabilitateIfSuspect(a.book, second.ID())
}

// auditTargets resolves which agent serves subject (the placement map's
// owning group when one is adopted, else a stable hash across the book) and
// a second, distinct book agent for the cross-check.
func (n *Node) auditTargets(book *AgentBook, subject pkc.NodeID) (primary AgentInfo, second *AgentInfo, ok bool) {
	agents := book.Agents()
	if len(agents) == 0 {
		return AgentInfo{}, nil, false
	}
	primary = agents[int(subject[0])%len(agents)]
	if m, _ := n.Placement(); m != nil {
		if info, err := n.groupInfo(m, m.ReadOwner(subject)); err == nil {
			primary = info
		}
	}
	for i := range agents {
		if agents[i].ID() != primary.ID() {
			second = &agents[i]
			break
		}
	}
	return primary, second, true
}

// auditFetch fetches and verifies one proof bundle with the node's retry
// policy, each attempt's wait capped to what remains of the sweep deadline.
func (n *Node) auditFetch(target AgentInfo, subject pkc.NodeID, replyOnion *onion.Onion, deadline time.Time) (*proof.Bundle, proof.Result, error) {
	var (
		b   *proof.Bundle
		res proof.Result
	)
	err := n.retrier.DoMax(0, func(_ int, _ time.Duration) error {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return resilience.Permanent(ErrTimeout)
		}
		wait := n.timeout()
		if wait > remaining {
			wait = remaining
		}
		var aerr error
		b, res, aerr = n.requestTrustProvenWait(target, subject, replyOnion, wait)
		if errors.Is(aerr, ErrClosed) || errors.Is(aerr, ErrBadAgent) || errors.Is(aerr, ErrWrongOwner) {
			return resilience.Permanent(aerr)
		}
		return aerr
	})
	return b, res, err
}

// noteAuditUnreachable feeds a failed audit exchange into the agent's breaker
// — only for agents the book actually tracks, so auditing a placement-routed
// agent outside the book never plants breaker state for a stranger.
func (n *Node) noteAuditUnreachable(book *AgentBook, id pkc.NodeID) {
	switch book.Health(id) {
	case Healthy, Suspect:
		n.noteFailure(book, id)
	}
}

// markSuspect records a suspect strike and handles a threshold quarantine:
// counting it and, when the quarantine vacated an active slot, promoting a
// standby into the hole.
func (n *Node) markSuspect(book *AgentBook, id pkc.NodeID) {
	_, quarantined, wasActive := book.MarkSuspect(id)
	if !quarantined {
		return
	}
	n.stats.agentsQuarantined.Add(1)
	n.cnt.agentsQuarantined.Inc()
	if wasActive {
		if _, ok := n.promoteBackup(book, id); ok {
			n.cnt.failovers.Inc()
		}
	}
}

func (n *Node) rehabilitateIfSuspect(book *AgentBook, id pkc.NodeID) {
	if book.Rehabilitate(id) {
		n.stats.agentsRehabilitated.Add(1)
		n.cnt.agentsRehabilitated.Inc()
	}
}

func (n *Node) countAuditProbe() {
	n.stats.auditProbes.Add(1)
	n.cnt.auditProbes.Inc()
}

func (n *Node) countAuditFailure() {
	n.stats.auditFailures.Add(1)
	n.cnt.auditFailures.Inc()
}

// raiseAdvisory packages a verified Lying bundle into a signed advisory,
// applies the evidence to the local book, and gossips the advisory to the
// node's neighbors.
func (n *Node) raiseAdvisory(a *auditor, b *proof.Bundle, res proof.Result) {
	a.mu.Lock()
	suspects := a.skew.Suspects(slanderMinReports, slanderMinSkew)
	a.mu.Unlock()
	adv := &audit.Advisory{
		Accused:  b.AgentID(),
		Reason:   res.Reason,
		Issued:   uint64(time.Now().Unix()),
		Bundle:   b.Encode(),
		Suspects: suspects,
	}
	adv.Sign(n.identity())
	// Mark our own advisory as seen so a gossip echo is deduplicated.
	n.advisorySeen(adv.Digest())
	n.stats.advisoriesIssued.Add(1)
	n.cnt.advisoriesIssued.Inc()
	n.recordAdvisory(AdvisoryRecord{Accused: adv.Accused, Auditor: n.ID(), Reason: res.Reason, Issued: adv.Issued})
	n.applyLyingEvidence(a.book, adv.Accused, sha256.Sum256(adv.Bundle))
	n.gossipAdvisory(adv.Encode())
}

// applyLyingEvidence escalates a verified lie against accused: the first
// distinct offending bundle quarantines (promoting a standby if an active
// slot was vacated), a second distinct one evicts. The same bundle re-learned
// through another path never double-counts — the per-accused digest ledger
// dedups it.
func (n *Node) applyLyingEvidence(book *AgentBook, accused pkc.NodeID, bundleDigest [sha256.Size]byte) {
	if book == nil {
		return
	}
	n.auditMu.Lock()
	if n.lyingEvidence == nil {
		n.lyingEvidence = make(map[pkc.NodeID]map[[sha256.Size]byte]bool)
	}
	set := n.lyingEvidence[accused]
	if set == nil {
		set = make(map[[sha256.Size]byte]bool)
		n.lyingEvidence[accused] = set
	}
	set[bundleDigest] = true
	strikes := len(set)
	n.auditMu.Unlock()
	if strikes >= 2 {
		if book.Evict(accused) {
			n.stats.agentsEvicted.Add(1)
			n.cnt.agentsEvicted.Inc()
		}
		return
	}
	quarantined, wasActive := book.Quarantine(accused)
	if !quarantined {
		return
	}
	n.stats.agentsQuarantined.Add(1)
	n.cnt.agentsQuarantined.Inc()
	if wasActive {
		if _, ok := n.promoteBackup(book, accused); ok {
			n.cnt.failovers.Inc()
		}
	}
}

// gossipAdvisory ships encoded advisory bytes to every neighbor over a
// single-layer exit onion (onion.BuildExit): the advisory travels the same
// relay transport as every onion-inner frame, sealed to the neighbor's
// anonymity key. Runs in the background — gossip must not stall a sweep or a
// session handler.
func (n *Node) gossipAdvisory(encoded []byte) {
	neighbors := n.Neighbors()
	if len(neighbors) == 0 || n.isClosed() {
		return
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for _, addr := range neighbors {
			if n.isClosed() {
				return
			}
			rel, err := n.FetchAnonKey(addr)
			if err != nil {
				continue
			}
			o, err := onion.BuildExit(n.identity(), rel, n.nextSeq(), nil)
			if err != nil {
				continue
			}
			sealed, err := pkc.Seal(rel.AP, encoded, nil)
			if err != nil {
				continue
			}
			_ = n.sendThroughOnion(o, wire.TAdvisory, sealed)
		}
	}()
}

// advisorySeen records an advisory digest and reports whether it was NEW
// (false means duplicate).
func (n *Node) advisorySeen(digest [sha256.Size]byte) bool {
	var key pkc.Nonce
	copy(key[:], digest[:pkc.NonceSize])
	n.auditMu.Lock()
	defer n.auditMu.Unlock()
	if n.advSeen == nil {
		n.advSeen = pkc.NewReplayCache(advisorySeenCap)
	}
	return n.advSeen.Observe(key)
}

// recordAdvisory appends to the bounded log of advisories this node verified.
func (n *Node) recordAdvisory(rec AdvisoryRecord) {
	n.auditMu.Lock()
	defer n.auditMu.Unlock()
	n.advisLog = append(n.advisLog, rec)
	if len(n.advisLog) > advisoryLogCap {
		n.advisLog = n.advisLog[len(n.advisLog)-advisoryLogCap:]
	}
}

// Advisories returns the advisories this node has verified end to end —
// issued by its own auditor or accepted from gossip — oldest first.
func (n *Node) Advisories() []AdvisoryRecord {
	n.auditMu.Lock()
	defer n.auditMu.Unlock()
	return append([]AdvisoryRecord(nil), n.advisLog...)
}

// handleAdvisory consumes one gossiped advisory arriving as an onion-inner
// frame. Nothing in it is trusted until this node re-runs the whole chain —
// advisory signature, bundle decode, proof.Verify, accused-vs-signer — on its
// own; a fabricated advisory (bad or missing bundle, exonerating verdict,
// wrong accused) is counted and dropped, never acted on.
func (n *Node) handleAdvisory(sealed []byte) {
	_, plain, ok := n.openAny(sealed)
	if !ok {
		return
	}
	adv, err := audit.DecodeAdvisory(plain)
	if err != nil {
		n.stats.advisoriesRejected.Add(1)
		n.cnt.advisoriesRejected.Inc()
		return
	}
	if !n.advisorySeen(adv.Digest()) {
		n.stats.advisoriesDuplicate.Add(1)
		n.cnt.advisoriesDuplicate.Inc()
		return
	}
	_, res, err := adv.Verify()
	if err != nil {
		n.stats.advisoriesRejected.Add(1)
		n.cnt.advisoriesRejected.Inc()
		return
	}
	n.stats.advisoriesAccepted.Add(1)
	n.cnt.advisoriesAccepted.Inc()
	n.recordAdvisory(AdvisoryRecord{Accused: adv.Accused, Auditor: adv.AuditorID(), Reason: res.Reason, Issued: adv.Issued})
	// Act on the verified evidence against whichever book this node runs —
	// the audited one when an auditor is attached, else the node's general
	// attached book.
	book := n.attachedBook()
	if a := n.currentAuditor(); a != nil {
		book = a.book
	}
	n.applyLyingEvidence(book, adv.Accused, sha256.Sum256(adv.Bundle))
	// Re-gossip once so advisories reach neighbors of neighbors; the digest
	// dedup above terminates the flood.
	n.gossipAdvisory(plain)
}

// SlanderSuspects scans this agent's accepted-report ledger for reporters
// whose reports skew heavily negative — the §3.6 slander heuristic over live
// per-reporter stats — and refreshes the node_slander_suspects_total gauge.
// minReports/minSkew <= 0 use the audit defaults. Returns suspects sorted by
// skew descending. ErrNotAgent for non-agents.
func (n *Node) SlanderSuspects(minReports int, minSkew float64) ([]audit.SuspectReporter, error) {
	if n.agent == nil {
		return nil, ErrNotAgent
	}
	if minReports <= 0 {
		minReports = slanderMinReports
	}
	if minSkew <= 0 {
		minSkew = slanderMinSkew
	}
	t := audit.NewSkewTable()
	n.agent.Reporters(func(s agentdir.ReporterStat) bool {
		t.Add(s.Reporter, uint64(s.Negative), uint64(s.Reports))
		return true
	})
	out := t.Suspects(uint64(minReports), minSkew)
	n.cnt.slanderSuspects.Set(int64(len(out)))
	return out, nil
}

// updateSlanderGauge refreshes the slander gauge from the auditor's skew
// table and counts newly flagged reporters.
func (n *Node) updateSlanderGauge(a *auditor) {
	a.mu.Lock()
	suspects := a.skew.Suspects(slanderMinReports, slanderMinSkew)
	var fresh int64
	for _, s := range suspects {
		if !a.slanderSeen[s.Reporter] {
			a.slanderSeen[s.Reporter] = true
			fresh++
		}
	}
	a.mu.Unlock()
	n.cnt.slanderSuspects.Set(int64(len(suspects)))
	if fresh > 0 {
		n.stats.slanderSuspectsFound.Add(fresh)
	}
}
