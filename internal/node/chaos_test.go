package node

import (
	"testing"

	"hirep/internal/pkc"
	"hirep/internal/resilience"
	"hirep/internal/trust"
)

// TestChaosFleetSurvivesAgentOutage is the resilience capstone: a live fleet
// (3 trusted agents + 1 standby backup + peer + relays) runs behind one
// shared fault-injection dialer. One agent is black-holed — its traffic is
// silently swallowed, the worst failure mode for an onion-routed protocol
// because sends keep "succeeding" — and the fleet must degrade, not die:
//
//   - evaluations keep answering on a 2-of-3 quorum while the dead agent
//     times out;
//   - the dead agent's circuit breaker opens, it is demoted, and the standby
//     backup is promoted in its place (§3.4.3, §3.6);
//   - the outcome report owed to the dead agent is deferred into the durable
//     outbox instead of being lost;
//   - after the agent is revived, ProbeBackups closes its breaker and
//     restores it, and the outbox flusher drains the deferred report into the
//     revived agent's store.
func TestChaosFleetSurvivesAgentOutage(t *testing.T) {
	if testing.Short() {
		t.Skip("live chaos test")
	}
	fd := resilience.NewFaultDialer(nil, 42)
	fl, err := StartFleet(FleetConfig{Agents: 4, Relays: 2, Peers: 1, Faults: fd})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fl.Close() })
	a0, a1, a2, standby := fl.Agents[0], fl.Agents[1], fl.Agents[2], fl.Agents[3]
	peer := fl.Peers[0]

	infos, err := fl.AgentInfos()
	if err != nil {
		t.Fatal(err)
	}
	info0, infoS := infos[0], infos[3]

	book, err := fl.Book(infos, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	peer.AttachBook(book)

	subject, _ := pkc.NewIdentity(nil)
	replyOnion, err := fl.ReplyOnion(peer)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: all three agents answer (and register the peer's key, which
	// the deferred report needs later).
	_, perAgent, err := peer.EvaluateSubject(book, subject.ID, replyOnion)
	if err != nil {
		t.Fatal(err)
	}
	if len(perAgent) != 3 {
		t.Fatalf("healthy fleet: %d answers", len(perAgent))
	}

	// Kill a0 the silent way: every dial to it gets a black-hole connection.
	// Onion forwards to it now vanish without any error signal.
	if err := fl.BlackHole(a0); err != nil {
		t.Fatal(err)
	}

	// Two degraded evaluations: quorum 2-of-3 keeps them succeeding, and the
	// second failure trips a0's breaker (threshold 2), demotes it, and
	// promotes the standby.
	for i := 0; i < 2; i++ {
		_, perAgent, err = peer.EvaluateSubject(book, subject.ID, replyOnion)
		if err != nil {
			t.Fatalf("degraded evaluation %d: %v", i, err)
		}
		if len(perAgent) != 2 {
			t.Fatalf("degraded evaluation %d: %d answers, want 2", i, len(perAgent))
		}
		if _, ok := perAgent[info0.ID()]; ok {
			t.Fatalf("degraded evaluation %d: black-holed agent answered", i)
		}
	}
	if st := book.BreakerState(info0.ID()); st != resilience.BreakerOpen {
		t.Fatalf("a0 breaker %v, want open", st)
	}
	snap := peer.Metrics().Snapshot()
	if snap["node_breaker_open_total"] < 1 {
		t.Fatalf("breaker-open counter %d", snap["node_breaker_open_total"])
	}
	if snap["node_failover_total"] < 1 {
		t.Fatalf("failover counter %d", snap["node_failover_total"])
	}
	// The standby took a0's slot; a0 moved to the backup cache.
	ids := map[pkc.NodeID]bool{}
	for _, a := range book.Agents() {
		ids[a.ID()] = true
	}
	if ids[info0.ID()] || !ids[infoS.ID()] || book.Len() != 3 {
		t.Fatalf("failover did not promote the standby: %v", book.Agents())
	}

	// The promoted standby now serves evaluations (this also registers the
	// peer's key with it, which its report acceptance requires, §3.5.2).
	_, perAgent, err = peer.EvaluateSubject(book, subject.ID, replyOnion)
	if err != nil {
		t.Fatal(err)
	}
	if len(perAgent) != 3 {
		t.Fatalf("post-failover evaluation: %d answers, want 3", len(perAgent))
	}
	if _, ok := perAgent[infoS.ID()]; !ok {
		t.Fatal("promoted standby did not answer")
	}

	// Complete the transaction as if the full original fleet had evaluated
	// it: a0 answered before the outage, so it is owed the outcome report —
	// which must be deferred to the outbox (its breaker is open), not
	// silently dropped.
	full := map[pkc.NodeID]trust.Value{}
	for id, v := range perAgent {
		full[id] = v
	}
	full[info0.ID()] = 0.5
	peer.CompleteTransaction(book, subject.ID, true, full)
	if d := peer.OutboxDepth(); d < 1 {
		t.Fatalf("outbox depth %d, want >= 1 deferred report", d)
	}
	if s := peer.Stats(); s.ReportsDeferred < 1 {
		t.Fatalf("ReportsDeferred = %d", s.ReportsDeferred)
	}
	// The three healthy agents each got the report live.
	waitFor(t, func() bool {
		return a1.Agent().ReportCount() >= 1 && a2.Agent().ReportCount() >= 1 &&
			standby.Agent().ReportCount() >= 1
	})
	if got := a0.Agent().ReportCount(); got != 0 {
		t.Fatalf("black-holed agent stored %d reports", got)
	}

	// Revive a0 and probe the backups: once the breaker cooldown elapses the
	// probe succeeds, the breaker closes, a0 is restored to the book, and the
	// flusher drains the deferred report into a0's store.
	if err := fl.Revive(a0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		for _, id := range peer.ProbeBackups(book, replyOnion) {
			if id == info0.ID() {
				return true
			}
		}
		return false
	})
	if st := book.BreakerState(info0.ID()); st != resilience.BreakerClosed {
		t.Fatalf("revived a0 breaker %v, want closed", st)
	}
	if book.Len() != 4 {
		t.Fatalf("book size %d after restore, want 4", book.Len())
	}
	waitFor(t, func() bool { return peer.OutboxDepth() == 0 })
	waitFor(t, func() bool { return a0.Agent().ReportCount() >= 1 })
	snap = peer.Metrics().Snapshot()
	if snap["node_outbox_sent_total"] < 1 {
		t.Fatalf("outbox-sent counter %d", snap["node_outbox_sent_total"])
	}
	if snap["node_breaker_close_total"] < 1 {
		t.Fatalf("breaker-close counter %d", snap["node_breaker_close_total"])
	}
	if s := peer.Stats(); s.ReportsLost != 0 {
		t.Fatalf("ReportsLost = %d, nothing should have been dropped", s.ReportsLost)
	}
}
