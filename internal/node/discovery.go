package node

import (
	"fmt"
	"sync"
	"time"

	"hirep/internal/pkc"
	"hirep/internal/wire"
)

// This file implements the live counterpart of the §3.4.1 trusted-agent list
// request: a token/TTL-limited walk over operator-supplied neighbor
// addresses (the live stand-in for overlay links, like Gnutella host
// caches). A node that holds agent descriptors — its own, or ones cached
// from earlier walks — answers the requestor directly, consuming a token;
// remaining tokens split across its neighbors.

// SetNeighbors installs the node's overlay neighbors (transport addresses).
func (n *Node) SetNeighbors(addrs []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.neighbors = append([]string(nil), addrs...)
}

// Neighbors returns the configured neighbor addresses.
func (n *Node) Neighbors() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]string(nil), n.neighbors...)
}

// PublishDescriptor makes this agent discoverable: it runs the Figure 3
// handshake against each relay address, builds a fresh onion, and caches the
// resulting descriptor so agent-list walks can return it. Returns the
// encoded descriptor. Only agents publish.
func (n *Node) PublishDescriptor(relayAddrs []string) (string, error) {
	if n.agent == nil {
		return "", ErrNotAgent
	}
	route, err := n.fetchRouteAddrs(relayAddrs)
	if err != nil {
		return "", err
	}
	o, err := n.BuildOnion(route)
	if err != nil {
		return "", err
	}
	desc := EncodeInfo(n.Info(o))
	n.mu.Lock()
	n.ownDescriptor = desc
	n.mu.Unlock()
	return desc, nil
}

func (n *Node) fetchRouteAddrs(addrs []string) ([]relayAlias, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("node: need at least one relay")
	}
	route := make([]relayAlias, 0, len(addrs))
	for _, a := range addrs {
		rel, err := n.FetchAnonKey(a)
		if err != nil {
			return nil, fmt.Errorf("node: relay %s: %w", a, err)
		}
		route = append(route, rel)
	}
	return route, nil
}

// cacheAgent remembers a verified foreign descriptor for future walks.
func (n *Node) cacheAgent(desc string) bool {
	info, err := DecodeInfo(desc)
	if err != nil {
		return false
	}
	id := info.ID()
	n.mu.Lock()
	defer n.mu.Unlock()
	if id == n.id.ID {
		return false
	}
	if n.agentCache == nil {
		n.agentCache = make(map[pkc.NodeID]string)
	}
	if len(n.agentCache) >= maxCachedAgents {
		if _, dup := n.agentCache[id]; !dup {
			return false
		}
	}
	n.agentCache[id] = desc
	return true
}

// maxCachedAgents bounds each node's descriptor cache.
const maxCachedAgents = 64

// knownDescriptors returns this node's own descriptor (if published) plus
// cached foreign descriptors, capped at limit.
func (n *Node) knownDescriptors(limit int) []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []string
	if n.ownDescriptor != "" {
		out = append(out, n.ownDescriptor)
	}
	for _, d := range n.agentCache {
		if len(out) >= limit {
			break
		}
		out = append(out, d)
	}
	return out
}

// DiscoverAgents runs a token/TTL-limited agent-list walk over the neighbor
// graph and returns the distinct verified agent descriptors collected within
// wait. Results are also cached for answering future walks.
func (n *Node) DiscoverAgents(tokens, ttl int, wait time.Duration) ([]AgentInfo, error) {
	if n.isClosed() {
		return nil, ErrClosed
	}
	if tokens < 1 || ttl < 1 {
		return nil, fmt.Errorf("node: tokens and ttl must be >= 1")
	}
	neighbors := n.Neighbors()
	if len(neighbors) == 0 {
		return nil, fmt.Errorf("node: no neighbors configured")
	}
	reqID, err := pkc.NewNonce(nil)
	if err != nil {
		return nil, err
	}
	collect := &discoveryCollect{descs: make(map[string]bool)}
	n.mu.Lock()
	if n.discoveries == nil {
		n.discoveries = make(map[pkc.Nonce]*discoveryCollect)
	}
	n.discoveries[reqID] = collect
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.discoveries, reqID)
		n.mu.Unlock()
	}()

	// Split the token budget across neighbors, §3.4.1-style.
	if len(neighbors) > tokens {
		neighbors = neighbors[:tokens]
	}
	base := tokens / len(neighbors)
	extra := tokens % len(neighbors)
	for i, nb := range neighbors {
		t := base
		if i < extra {
			t++
		}
		var e wire.Encoder
		e.Bytes(reqID[:]).String(n.Addr()).String(n.Addr()).U64(uint64(t)).U64(uint64(ttl))
		_ = n.send(nb, wire.TAgentListReq, e.Encode())
	}
	time.Sleep(wait)

	collect.mu.Lock()
	descs := make([]string, 0, len(collect.descs))
	for d := range collect.descs {
		descs = append(descs, d)
	}
	collect.mu.Unlock()
	var infos []AgentInfo
	seen := map[pkc.NodeID]bool{}
	for _, d := range descs {
		info, err := DecodeInfo(d)
		if err != nil {
			continue // unverifiable descriptors are dropped silently
		}
		if seen[info.ID()] || info.ID() == n.ID() {
			continue
		}
		seen[info.ID()] = true
		infos = append(infos, info)
		n.cacheAgent(d)
	}
	return infos, nil
}

// Ping probes a node's liveness with an echo round trip (the §3.4.3 backup
// probe: "the peer first probes all back up agents"). It reports whether the
// target answered with the matching payload within the node's probe timeout —
// a deliberately short deadline, distinct from the request timeout, because a
// probe's common case is a dead peer and it is never retried.
func (n *Node) Ping(addr string) bool {
	nonce, err := pkc.NewNonce(nil)
	if err != nil {
		return false
	}
	typ, echo, err := n.roundTripTimeout(addr, wire.TPing, nonce[:], n.probeTimeout())
	if err != nil || typ != wire.TPong || len(echo) != pkc.NonceSize {
		return false
	}
	var got pkc.Nonce
	copy(got[:], echo)
	return got == nonce
}

// discoveryCollect accumulates one walk's responses.
type discoveryCollect struct {
	mu    sync.Mutex
	descs map[string]bool
}

// handleAgentListReq serves one hop of a walk.
func (n *Node) handleAgentListReq(payload []byte) {
	d := wire.NewDecoder(payload)
	idRaw := d.Bytes()
	origin := d.String()
	sender := d.String()
	tokens := int(d.U64())
	ttl := int(d.U64())
	if d.Finish() != nil || len(idRaw) != pkc.NonceSize || origin == "" {
		return
	}
	var reqID pkc.Nonce
	copy(reqID[:], idRaw)
	// Deduplicate: a node answers each walk at most once; repeats drop the
	// tokens, exactly like the simulated walk.
	n.mu.Lock()
	if n.walksSeen == nil {
		n.walksSeen = pkc.NewReplayCache(1024)
	}
	seenBefore := !n.walksSeen.Observe(reqID)
	n.mu.Unlock()
	if seenBefore {
		return
	}
	// Answer with known descriptors, consuming one token.
	if descs := n.knownDescriptors(8); len(descs) > 0 {
		var e wire.Encoder
		e.Bytes(reqID[:]).U64(uint64(len(descs)))
		for _, desc := range descs {
			e.String(desc)
		}
		_ = n.send(origin, wire.TAgentListResp, e.Encode())
		n.stats.walksAnswered.Add(1)
		tokens--
	}
	if tokens <= 0 || ttl <= 1 {
		return
	}
	// Forward the remaining tokens to neighbors other than where the request
	// came from (and never back to the origin).
	var neighbors []string
	for _, nb := range n.Neighbors() {
		if nb != sender && nb != origin {
			neighbors = append(neighbors, nb)
		}
	}
	if len(neighbors) == 0 {
		return
	}
	if len(neighbors) > tokens {
		neighbors = neighbors[:tokens]
	}
	base := tokens / len(neighbors)
	extra := tokens % len(neighbors)
	for i, nb := range neighbors {
		t := base
		if i < extra {
			t++
		}
		var e wire.Encoder
		e.Bytes(reqID[:]).String(origin).String(n.Addr()).U64(uint64(t)).U64(uint64(ttl - 1))
		_ = n.send(nb, wire.TAgentListReq, e.Encode())
	}
}

// handleAgentListResp collects walk answers at the origin.
func (n *Node) handleAgentListResp(payload []byte) {
	d := wire.NewDecoder(payload)
	idRaw := d.Bytes()
	count := int(d.U64())
	if len(idRaw) != pkc.NonceSize || count < 0 || count > 64 {
		return
	}
	descs := make([]string, 0, count)
	for i := 0; i < count; i++ {
		descs = append(descs, d.String())
	}
	if d.Finish() != nil {
		return
	}
	var reqID pkc.Nonce
	copy(reqID[:], idRaw)
	n.mu.Lock()
	collect := n.discoveries[reqID]
	n.mu.Unlock()
	if collect == nil {
		return
	}
	collect.mu.Lock()
	for _, desc := range descs {
		collect.descs[desc] = true
	}
	collect.mu.Unlock()
}
