package node

import (
	"testing"
	"time"

	"hirep/internal/pkc"
)

func TestLiveKeyRotation(t *testing.T) {
	nodes := fleet(t, 4, 1)
	agentNode, peer := nodes[0], nodes[1]
	relays := nodes[2:4]
	agentOnion, err := agentNode.BuildOnion(fetchRoute(t, agentNode, relays[:1]))
	if err != nil {
		t.Fatal(err)
	}
	info := agentNode.Info(agentOnion)
	subject, _ := pkc.NewIdentity(nil)

	// Introduce the peer and accumulate reports under the old identity.
	peerOnion, err := peer.BuildOnion(fetchRoute(t, peer, relays[1:2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := peer.RequestTrust(info, subject.ID, peerOnion); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := peer.ReportTransaction(info, subject.ID, true); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return agentNode.Agent().ReportCount() == 3 })

	oldID := peer.ID()
	gotOld, gotNew, err := peer.RotateIdentity([]AgentInfo{info})
	if err != nil {
		t.Fatal(err)
	}
	if gotOld != oldID || gotNew != peer.ID() || gotOld == gotNew {
		t.Fatalf("rotation ids inconsistent: old=%s new=%s current=%s", gotOld.Short(), gotNew.Short(), peer.ID().Short())
	}
	// The agent must remap the key list: old gone, new present.
	waitFor(t, func() bool { return agentNode.Agent().KnowsKey(gotNew) })
	if agentNode.Agent().KnowsKey(oldID) {
		t.Fatal("agent still knows the old nodeID")
	}

	// The peer can immediately report under the new identity without
	// re-introduction.
	if err := peer.ReportTransaction(info, subject.ID, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return agentNode.Agent().ReportCount() == 4 })

	// The old reply onion is signed by the OLD identity; a request under the
	// new identity must not be answered through it (signature mismatch) —
	// otherwise anyone could redirect replies into someone else's onion.
	peer.SetTimeout(500 * time.Millisecond)
	if _, _, err := peer.RequestTrust(info, subject.ID, peerOnion); err == nil {
		t.Fatal("stale-signature reply onion accepted after rotation")
	}
	peer.SetTimeout(5 * time.Second)

	// With a fresh onion under the new identity, requests work and the
	// merged report history (3 good + 1 bad) is visible.
	newOnion, err := peer.BuildOnion(fetchRoute(t, peer, relays[1:2]))
	if err != nil {
		t.Fatal(err)
	}
	v, hasData, err := peer.RequestTrust(info, subject.ID, newOnion)
	if err != nil {
		t.Fatalf("post-rotation request via new onion: %v", err)
	}
	if !hasData || v >= 0.8 {
		t.Fatalf("reports not merged across rotation: v=%v hasData=%v", v, hasData)
	}
}

func TestRotationOfAgentKeepsServing(t *testing.T) {
	nodes := fleet(t, 3, 1)
	agentNode, peer, relay := nodes[0], nodes[1], nodes[2]
	agentOnion, err := agentNode.BuildOnion(fetchRoute(t, agentNode, []*Node{relay}))
	if err != nil {
		t.Fatal(err)
	}
	oldInfo := agentNode.Info(agentOnion)
	subject, _ := pkc.NewIdentity(nil)
	peerOnion, err := peer.BuildOnion(fetchRoute(t, peer, []*Node{relay}))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := peer.RequestTrust(oldInfo, subject.ID, peerOnion); err != nil {
		t.Fatal(err)
	}
	// The agent rotates; peers holding the OLD descriptor must still get
	// verifiable answers during the grace window (the agent answers under
	// the identity the request was sealed to).
	if _, _, err := agentNode.RotateIdentity(nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := peer.RequestTrust(oldInfo, subject.ID, peerOnion); err != nil {
		t.Fatalf("old descriptor stopped working right after rotation: %v", err)
	}
	// A refreshed descriptor under the new identity works too.
	newOnion, err := agentNode.BuildOnion(fetchRoute(t, agentNode, []*Node{relay}))
	if err != nil {
		t.Fatal(err)
	}
	newInfo := agentNode.Info(newOnion)
	if newInfo.ID() == oldInfo.ID() {
		t.Fatal("agent ID unchanged after rotation")
	}
	if _, _, err := peer.RequestTrust(newInfo, subject.ID, peerOnion); err != nil {
		t.Fatalf("new descriptor rejected: %v", err)
	}
}

func TestRotationGraceWindowBounded(t *testing.T) {
	nd, err := Listen("127.0.0.1:0", Options{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	ids := map[pkc.NodeID]bool{nd.ID(): true}
	for i := 0; i < 4; i++ {
		if _, _, err := nd.RotateIdentity(nil); err != nil {
			t.Fatal(err)
		}
		ids[nd.ID()] = true
	}
	if len(ids) != 5 {
		t.Fatalf("%d distinct identities after 4 rotations", len(ids))
	}
	if got := len(nd.identities()); got != 1+maxPrevIdentities {
		t.Fatalf("grace window holds %d identities, want %d", got, 1+maxPrevIdentities)
	}
}
