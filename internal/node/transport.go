package node

import (
	"net"
	"time"

	"hirep/internal/metrics"
	"hirep/internal/transport"
	"hirep/internal/wire"
)

// defaultMaxSessions caps concurrently served inbound connections. A
// session conn occupies its slot for the whole connection lifetime (not one
// frame), so the default is sized for a node's full peer set — every peer
// at its pool cap — with ample headroom, while still bounding a flood.
const defaultMaxSessions = 256

// firstFrameTimeout bounds how long an accepted connection may sit silent
// before its first frame; it is deliberately shorter than the session idle
// timeout so a connect-and-say-nothing flood releases its session slots
// quickly.
const firstFrameTimeout = 5 * time.Second

// acceptLoop serves inbound connections. Each accepted conn is handed to
// transport.ServeConn, which sniffs hello-vs-legacy and runs the
// appropriate loop; the sessionSem gate bounds how many conns are served at
// once so a conn flood cannot exhaust goroutines — beyond the cap,
// connections are closed on arrival and counted as shed.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	cfg := transport.ServerConfig{
		MaxStreams:        n.opts.MaxStreams,
		FirstFrameTimeout: firstFrameTimeout,
		IdleTimeout:       n.opts.IdleTimeout,
		WriteTimeout:      n.timeout(), // SetTimeout may run concurrently
		OnFrame:           n.countFrame,
		OnReadError:       n.countReadError,
		OnDecodeError:     n.countDecodeError,
	}
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		select {
		case n.sessionSem <- struct{}{}:
		default:
			// At the session cap: shed the connection instead of queuing a
			// goroutine behind it. The peer sees a close-before-hello-ack,
			// which its pool treats as a transient failure, not legacy.
			conn.Close()
			n.stats.sessionsShed.Add(1)
			n.sessShedCnt.Inc()
			continue
		}
		n.trackSession(conn)
		n.wg.Add(1)
		go func() {
			defer func() {
				n.untrackSession(conn)
				<-n.sessionSem
				n.wg.Done()
			}()
			transport.ServeConn(conn, cfg, n.handle)
		}()
	}
}

// trackSession registers a live inbound connection so Close can tear it
// down; a session would otherwise outlive the listener by up to its idle
// timeout. A node already closed kills the conn immediately.
func (n *Node) trackSession(conn net.Conn) {
	n.sessMu.Lock()
	if n.sessions == nil {
		n.sessions = make(map[net.Conn]struct{})
	}
	n.sessions[conn] = struct{}{}
	n.sessMu.Unlock()
	if n.isClosed() {
		conn.Close()
	}
}

func (n *Node) untrackSession(conn net.Conn) {
	n.sessMu.Lock()
	delete(n.sessions, conn)
	n.sessMu.Unlock()
}

// closeSessions force-closes every live inbound connection (Close path);
// their ServeConn loops see the close as a read error and return.
func (n *Node) closeSessions() {
	n.sessMu.Lock()
	for conn := range n.sessions {
		conn.Close()
	}
	n.sessMu.Unlock()
}

// bindFrameCounters resolves the per-message-type inbound counters plus the
// read/decode error counters once, so the frame path touches only atomics.
func (n *Node) bindFrameCounters(r *metrics.Registry) {
	for t := 1; t < wire.NumMsgTypes; t++ {
		n.frameCnt[t] = r.Counter("node_frames_in_" + wire.MsgType(t).String() + "_total")
	}
	n.frameUnknown = r.Counter("node_frames_in_unknown_total")
	n.frameReadErr = r.Counter("node_frames_read_err_total")
	n.frameDecodeErr = r.Counter("node_frames_decode_err_total")
	n.sessShedCnt = r.Counter("node_sessions_shed_total")
}
