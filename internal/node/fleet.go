package node

import (
	"fmt"
	"time"

	"hirep/internal/onion"
	"hirep/internal/resilience"
)

// This file is the shared live-fleet harness: agents + relays + peers on real
// loopback TCP behind one optional fault-injection dialer. It was factored
// out of the chaos/churn/replication tests so the adversarial campaign
// driver's live backend (internal/campaign, DESIGN.md §13) runs attacks
// against exactly the topology the resilience tests exercise. The API returns
// errors instead of taking a testing.T — tests wrap it, the campaign CLI
// calls it directly.

// ChaosOptions is the canonical chaos-grade node configuration used by the
// resilience tests and campaign fleets: tight timeouts so faults surface
// in-test, a fast breaker, an eager outbox flusher, and — when fd is non-nil
// — every dial routed through the shared fault dialer.
func ChaosOptions(fd *resilience.FaultDialer) Options {
	opts := Options{
		Timeout:             700 * time.Millisecond,
		ProbeTimeout:        400 * time.Millisecond,
		Retry:               resilience.RetryPolicy{Attempts: 2, BaseDelay: 20 * time.Millisecond, MaxDelay: 100 * time.Millisecond},
		Breaker:             resilience.BreakerConfig{Threshold: 2, Cooldown: 200 * time.Millisecond},
		OutboxFlushInterval: 50 * time.Millisecond,
	}
	if fd != nil {
		opts.Dialer = fd.Dial
	}
	return opts
}

// FleetConfig sizes a StartFleet run.
type FleetConfig struct {
	Agents int // reputation agents (Options.Agent set)
	Relays int // plain relays for onion routes (defaults to 1)
	Peers  int // requestor/reporter nodes

	// Faults, when non-nil, is the shared fault-injection dialer every node
	// dials through — the campaign driver black-holes and revives nodes by
	// address on it mid-run.
	Faults *resilience.FaultDialer

	// Opts is the base Options for every node. A zero Timeout means "use
	// ChaosOptions(Faults)". The Agent flag is set per role regardless.
	Opts Options

	// AgentOpts, when non-nil, tweaks agent i's options before Listen — store
	// dirs, replica sets, admission difficulty.
	AgentOpts func(i int, opts *Options)
}

// Fleet is a running set of live nodes.
type Fleet struct {
	Agents []*Node
	Relays []*Node
	Peers  []*Node
	Faults *resilience.FaultDialer
}

// StartFleet starts cfg's nodes on loopback. On error every node already
// started is closed.
func StartFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Relays <= 0 {
		cfg.Relays = 1
	}
	base := cfg.Opts
	if base.Timeout == 0 {
		base = ChaosOptions(cfg.Faults)
	} else if cfg.Faults != nil && base.Dialer == nil {
		base.Dialer = cfg.Faults.Dial
	}
	f := &Fleet{Faults: cfg.Faults}
	start := func(opts Options) (*Node, error) {
		nd, err := Listen("127.0.0.1:0", opts)
		if err != nil {
			_ = f.Close()
			return nil, err
		}
		return nd, nil
	}
	for i := 0; i < cfg.Agents; i++ {
		opts := base
		opts.Agent = true
		if cfg.AgentOpts != nil {
			cfg.AgentOpts(i, &opts)
		}
		nd, err := start(opts)
		if err != nil {
			return nil, fmt.Errorf("node: fleet agent %d: %w", i, err)
		}
		f.Agents = append(f.Agents, nd)
	}
	for i := 0; i < cfg.Relays; i++ {
		opts := base
		opts.Agent = false
		nd, err := start(opts)
		if err != nil {
			return nil, fmt.Errorf("node: fleet relay %d: %w", i, err)
		}
		f.Relays = append(f.Relays, nd)
	}
	for i := 0; i < cfg.Peers; i++ {
		opts := base
		opts.Agent = false
		nd, err := start(opts)
		if err != nil {
			return nil, fmt.Errorf("node: fleet peer %d: %w", i, err)
		}
		f.Peers = append(f.Peers, nd)
	}
	return f, nil
}

// Close shuts down every node in the fleet.
func (f *Fleet) Close() error {
	var first error
	for _, group := range [][]*Node{f.Agents, f.Relays, f.Peers} {
		for _, nd := range group {
			if err := nd.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// route runs the Figure 3 handshake from `from` against every relay.
func (f *Fleet) route(from *Node) ([]onion.Relay, error) {
	route := make([]onion.Relay, len(f.Relays))
	for i, r := range f.Relays {
		rel, err := from.FetchAnonKey(r.Addr())
		if err != nil {
			return nil, fmt.Errorf("node: fleet handshake with relay %d: %w", i, err)
		}
		route[i] = rel
	}
	return route, nil
}

// AgentInfo publishes agent a's descriptor with an onion routed through every
// fleet relay.
func (f *Fleet) AgentInfo(a *Node) (AgentInfo, error) {
	route, err := f.route(a)
	if err != nil {
		return AgentInfo{}, err
	}
	o, err := a.BuildOnion(route)
	if err != nil {
		return AgentInfo{}, err
	}
	return a.Info(o), nil
}

// AgentInfos publishes every agent's descriptor, index-aligned with
// f.Agents.
func (f *Fleet) AgentInfos() ([]AgentInfo, error) {
	infos := make([]AgentInfo, len(f.Agents))
	for i, a := range f.Agents {
		info, err := f.AgentInfo(a)
		if err != nil {
			return nil, err
		}
		infos[i] = info
	}
	return infos, nil
}

// ReplyOnion builds peer's reply route through the fleet's last relay.
func (f *Fleet) ReplyOnion(peer *Node) (*onion.Onion, error) {
	r := f.Relays[len(f.Relays)-1]
	rel, err := peer.FetchAnonKey(r.Addr())
	if err != nil {
		return nil, err
	}
	return peer.BuildOnion([]onion.Relay{rel})
}

// Book builds an AgentBook holding the first nPrimary infos as trusted
// agents and the rest as standby backups, with the given quorum.
func (f *Fleet) Book(infos []AgentInfo, nPrimary, quorum int) (*AgentBook, error) {
	book, err := NewAgentBook(len(infos), 0.3, 0.4)
	if err != nil {
		return nil, err
	}
	for i, info := range infos {
		if i < nPrimary {
			if !book.Add(info) {
				return nil, fmt.Errorf("node: fleet book rejected agent %d", i)
			}
		} else if !book.AddBackup(info) {
			return nil, fmt.Errorf("node: fleet book rejected backup %d", i)
		}
	}
	book.SetQuorum(quorum)
	return book, nil
}

// BlackHole silently swallows all traffic to nd — the worst failure mode for
// an onion-routed protocol, because sends keep "succeeding". Requires a
// Faults dialer.
func (f *Fleet) BlackHole(nd *Node) error {
	if f.Faults == nil {
		return fmt.Errorf("node: fleet has no fault dialer")
	}
	f.Faults.BlackHole(nd.Addr())
	return nil
}

// Revive clears every fault rule against nd.
func (f *Fleet) Revive(nd *Node) error {
	if f.Faults == nil {
		return fmt.Errorf("node: fleet has no fault dialer")
	}
	f.Faults.Clear(nd.Addr())
	return nil
}
