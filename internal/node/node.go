// Package node is the live hiREP node prototype — the paper's stated future
// work ("developing a hiREP prototype", §6) — running the real protocol over
// TCP with real cryptography: self-certifying identities (internal/pkc),
// the Figure 3 relay handshake and layered onions (internal/onion), and the
// reputation-agent report store (internal/agentdir).
//
// Every node can act as an onion relay; nodes started with Options.Agent
// additionally serve trust-value requests and accept signed transaction
// reports. Requestors reach agents exclusively through the agents' published
// onions and receive responses through their own onions, so neither side
// learns the other's transport address (§3.5).
package node

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hirep/internal/agentdir"
	"hirep/internal/metrics"
	"hirep/internal/onion"
	"hirep/internal/pkc"
	"hirep/internal/proof"
	"hirep/internal/repstore"
	"hirep/internal/resilience"
	"hirep/internal/transport"
	"hirep/internal/trust"
	"hirep/internal/wire"
)

// Errors returned by the node.
var (
	ErrClosed     = errors.New("node: closed")
	ErrTimeout    = errors.New("node: request timed out")
	ErrBadAgent   = errors.New("node: agent response failed verification")
	ErrNotAgent   = errors.New("node: this node is not an agent")
	ErrBadMessage = errors.New("node: malformed message")
)

// Options configures a node.
type Options struct {
	// Agent enables the reputation-agent role.
	Agent bool
	// Timeout bounds dials and request waits (default 5s).
	Timeout time.Duration
	// ProbeTimeout bounds liveness probes — Ping round trips and breaker
	// half-open probe requests — so checking a dead peer is cheap (default
	// 750ms, capped at Timeout).
	ProbeTimeout time.Duration
	// StoreDir, when non-empty and Agent is set, backs the agent's report
	// state with the durable WAL store in that directory (internal/repstore):
	// accepted reports survive restarts, and Close flushes a snapshot.
	// Empty keeps the in-memory store.
	StoreDir string
	// Retry shapes the jittered-exponential-backoff retry wrapper around the
	// node's client-side sends and round trips. Zero fields mean defaults
	// (3 attempts, 50ms base, 2s cap); Attempts: 1 disables retries.
	Retry resilience.RetryPolicy
	// Breaker tunes the per-agent circuit breakers of books attached with
	// AttachBook. Zero fields mean defaults (3 consecutive failures, 30s
	// cooldown).
	Breaker resilience.BreakerConfig
	// OutboxPath, when non-empty, journals undeliverable transaction reports
	// to that file so they survive restarts; empty keeps the outbox in
	// memory only. The outbox is active either way.
	OutboxPath string
	// OutboxCap bounds the outbox (default 1024); when full, the oldest
	// queued report is evicted and counted as lost.
	OutboxCap int
	// OutboxFlushInterval is the base cadence of the background flusher that
	// retries queued reports (default 250ms, backed off while deliveries
	// keep failing).
	OutboxFlushInterval time.Duration
	// Dialer replaces the TCP connector, e.g. with a
	// resilience.FaultDialer for chaos tests. Nil means real TCP. The
	// connection pool dials through it, so fault injection bites pooled
	// sessions exactly as it bit one-shot dials.
	Dialer resilience.Dialer
	// PoolSize caps pooled session connections per peer (default 2).
	PoolSize int
	// MaxStreams bounds in-flight multiplexed streams per pooled connection
	// — outbound it is the backpressure window, inbound the per-session
	// handler cap (default 64).
	MaxStreams int
	// IdleTimeout reaps pooled connections (and inbound sessions) that carry
	// no frame for this long (default 60s).
	IdleTimeout time.Duration
	// MaxSessions caps concurrently served inbound connections; beyond it
	// new connections are closed immediately and counted in
	// Stats.SessionsShed rather than spawning goroutines (default 256).
	MaxSessions int
	// Metrics receives the node's resilience counters (retries, breaker
	// transitions, failovers, outbox depth). Nil creates a private registry,
	// readable via Node.Metrics.
	Metrics *metrics.Registry
	// Replicas lists replica-agent addresses this agent ships its committed
	// report batches to (DESIGN.md §10). Requires Agent.
	Replicas []string
	// ReplicaOf lists the primary agent IDs this node replicates FOR:
	// RReplicate/RRepair frames (and on-demand replica store creation) are
	// accepted only from these identities. Replication is an offline
	// pairing — without an entry here (or a later AuthorizeReplicaOf call)
	// every replication frame is dropped, however validly signed, so an
	// attacker cannot mint an identity and poison this agent's combined
	// tally or fill its disk with replica stores.
	ReplicaOf []pkc.NodeID
	// ReplicaPeers lists fellow replica-group member IDs allowed to read
	// this node's replication state (RDigest/RFetch — shard exports carry
	// per-reporter tallies and must stay inside the group). IDs in
	// ReplicaOf are implicitly allowed. See also AuthorizeReplicaPeer.
	ReplicaPeers []pkc.NodeID
	// SyncInterval is the cadence of the periodic anti-entropy pass against
	// each replica (default 5s).
	SyncInterval time.Duration
	// HandoffCap bounds each replica's hinted-handoff queue (default 1024);
	// overflow evicts the oldest batch, and anti-entropy later heals the gap.
	HandoffCap int
	// ReportBatchSize caps the reports this node packs per TReportBatch
	// frame on the sending side — ReportBatchOrDefer and the batched outbox
	// flush chunk to it (default 256, capped at MaxBatchReports).
	ReportBatchSize int
	// VerifyWorkers sizes the agent's report-verification worker pool
	// (default GOMAXPROCS). Requires Agent to matter.
	VerifyWorkers int
	// VerifyQueue bounds the admission queue in front of the verification
	// pool (default 128 batches); a batch arriving at a full queue is shed
	// with an all-saturated ack instead of queueing unboundedly.
	VerifyQueue int
	// Group names the agent group this node belongs to in the routed overlay
	// (DESIGN.md §12). With a Group set and a placement map adopted, the
	// agent serves only the subjects its group owns and answers wrong-owner
	// for everything else. Empty leaves the agent unpartitioned.
	Group string
	// StoreShards sets the report store's shard count (default 16, power of
	// two). In a routed overlay it must equal the placement map's shard
	// count, because rebalance migrates whole store shards between groups.
	StoreShards int
	// PlacementSources lists node addresses asked for a newer signed
	// placement map when a wrong-owner answer reveals ours is stale.
	PlacementSources []string
	// PlacementAuthority pins the identity every placement map must be
	// signed by. The zero value accepts any validly signed map with a newer
	// epoch from the solicited paths — SetPlacement and fetches from
	// PlacementSources — but refuses unsolicited TPlacement pushes
	// entirely: without a pinned authority, any connected peer could push
	// a map at the maximum epoch and permanently capture the routing.
	// Production fleets set it.
	PlacementAuthority pkc.NodeID
	// HandoffPeers lists identities allowed to drive shard handoffs against
	// this agent — seal shards and pull their exports during a rebalance.
	// Like ReplicaOf, an offline pairing; see also AuthorizeHandoffPeer.
	HandoffPeers []pkc.NodeID
	// AdmissionPoWBits, when positive on an agent, arms the sybil-admission
	// gate (DESIGN.md §13): the first report batch of every identity must
	// carry a proof-of-work solution with this many leading zero bits bound
	// to the reporter's nodeID, checked in the ingest path before any
	// signature work. 0 disables the gate.
	AdmissionPoWBits int
	// AdmissionRate is the sustained reports/sec the gate allows per
	// admitted identity; exceeding it revokes the admission so a flood pays
	// a fresh proof of work per burst. 0 means unlimited once admitted.
	AdmissionRate float64
	// AdmissionBurst is the per-identity token-bucket burst (default
	// 2×ReportBatchSize). Only meaningful with AdmissionRate set.
	AdmissionBurst int
	// AdmissionCap bounds the admitted-identity table (default 4096);
	// overflow evicts the oldest admission, whose identity must re-solve.
	AdmissionCap int
	// AdmissionSolveLimit is the hardest difficulty this node will solve
	// when an agent demands admission (default 24): a malicious agent
	// cannot burn unbounded sender CPU. Harder demands leave the reports
	// deferred in the outbox.
	AdmissionSolveLimit int
	// EvidenceCap, when positive on an agent, retains up to that many signed
	// report wires per subject in the report store — the evidence log behind
	// the verifiable-read subsystem (DESIGN.md §14). 0 keeps tallies only;
	// proof bundles then verify Partial rather than Matching. Requires Agent.
	EvidenceCap int
	// ProofCache, when positive, bounds the node's proof payload cache
	// (entries, FIFO). On an agent it memoizes assembled bundles/snapshots;
	// on a non-agent configured with ConfigureProofEdge it is the edge cache
	// that serves verifiable reads with zero agent round trips on a hit.
	ProofCache int
	// SnapshotTTL bounds trust-snapshot validity and proof-cache entry
	// lifetime (default 60s) — the only freshness an untrusted cache can
	// degrade.
	SnapshotTTL time.Duration
	// AuditInterval is the cadence of the background audit sweep started by
	// StartAuditor (DESIGN.md §15). 0 disables the periodic loop; AuditSweep
	// can still be driven manually.
	AuditInterval time.Duration
	// AuditSample caps the subjects audited per sweep (default 4).
	AuditSample int
	// AuditQuarantineThreshold is the suspect-strike count at which the
	// audited book quarantines an agent (default 3).
	AuditQuarantineThreshold int
}

// AgentInfo is what a trusted-agent list entry holds about an agent in the
// live protocol: its signature key (authenticity), anonymity key (payload
// confidentiality), and published onion (reachability without an address).
type AgentInfo struct {
	SP    ed25519.PublicKey
	AP    *ecdh.PublicKey
	Onion *onion.Onion
}

// ID returns the agent's self-certifying node ID.
func (a AgentInfo) ID() pkc.NodeID { return pkc.DeriveNodeID(a.SP) }

// trustResponse is a decoded, verified trust-value response.
type trustResponse struct {
	subject    pkc.NodeID
	value      trust.Value
	hasData    bool
	wrongOwner bool // agent's group does not own the subject (DESIGN.md §12)
}

// Node is one live hiREP participant.
type Node struct {
	opts    Options
	ln      net.Listener
	agent   *agentdir.Agent
	ages    *onion.AgeTracker
	seqMu   sync.Mutex
	seq     uint64
	mu      sync.Mutex
	id      *pkc.Identity
	prev    []*pkc.Identity                 // predecessors kept during rotation grace period
	hs      map[pkc.Nonce]onion.RelayAnswer // outstanding relay handshakes
	pending map[pkc.Nonce]chan trustResponse
	closed  atomic.Bool // checked on hot paths without taking n.mu
	wg      sync.WaitGroup

	// Batched report ingest (batch.go): outstanding batch acks keyed by
	// batch nonce, the agent-side verification pool, and the standing reply
	// onion enabling acknowledged outbox flushes.
	pendingAcks map[pkc.Nonce]*batchAckWait
	ingest      *ingestPool
	ackOnion    *onion.Onion
	admission   *admissionGate // sybil-admission gate (nil = disabled)

	// Replication plumbing (replication.go): primary-side shipping state,
	// replica stores held for other primaries, and in-flight status probes.
	repl          *replicator
	replicas      *replicaSet
	pendingStatus map[pkc.Nonce]chan ReplStatus

	// Routed-overlay placement state (overlay.go): the adopted signed shard
	// map, this node's group membership, and in-progress handoff seals.
	place *placement

	// Verifiable-read plumbing (proof.go): outstanding proof requests, the
	// payload cache, the edge-forwarding config, and the audit harness's
	// tamper hook.
	pendingProofs map[pkc.Nonce]*proofWait
	proofCache    *proofCache
	proofMu       sync.Mutex
	proofTamper   func(*proof.Bundle)
	edgeUpstream  AgentInfo
	edgeOnion     *onion.Onion

	// Transport plumbing: the outbound connection pool, the inbound session
	// gate, and the per-message-type frame counters (transport.go in this
	// package binds them).
	pool           *transport.Pool
	sessionSem     chan struct{}
	sessMu         sync.Mutex
	sessions       map[net.Conn]struct{}
	frameCnt       [wire.NumMsgTypes]*metrics.Counter
	frameUnknown   *metrics.Counter
	frameReadErr   *metrics.Counter
	frameDecodeErr *metrics.Counter
	sessShedCnt    *metrics.Counter

	// stats holds the operational counters (stats.go).
	stats nodeStats

	// Resilience plumbing (resilience.go): retry wrapper, pluggable dialer,
	// metrics registry, durable report outbox and its flusher, and the agent
	// book whose breakers gate outbox flushing.
	retrier  *resilience.Retrier
	dialer   resilience.Dialer
	reg      *metrics.Registry
	cnt      resilienceCounters
	outbox   *resilience.Outbox
	bookMu   sync.Mutex
	book     *AgentBook
	flushCh  chan struct{}
	closeCh  chan struct{}
	outboxWG sync.WaitGroup

	// Agent discovery state (discovery.go).
	neighbors     []string
	ownDescriptor string
	agentCache    map[pkc.NodeID]string
	discoveries   map[pkc.Nonce]*discoveryCollect
	walksSeen     *pkc.ReplayCache

	// Audit plumbing (audit.go): the auditor state machine behind
	// StartAuditor/AuditSweep, gossip dedup, the verified-advisory log, and
	// the per-accused verified-lying-evidence ledger driving the
	// quarantine → eviction escalation.
	auditor       *auditor
	auditMu       sync.Mutex
	advSeen       *pkc.ReplayCache // advisory digests already processed
	advisLog      []AdvisoryRecord // bounded log of verified advisories
	lyingEvidence map[pkc.NodeID]map[[32]byte]bool
}

// relayAlias is the onion-route hop type returned by FetchAnonKey.
type relayAlias = onion.Relay

// maxPrevIdentities bounds the rotation grace window: onions sealed to older
// identities than this stop being peelable.
const maxPrevIdentities = 2

// SetTimeout adjusts the node's dial/request timeout at runtime.
func (n *Node) SetTimeout(d time.Duration) {
	if d <= 0 {
		return
	}
	n.mu.Lock()
	n.opts.Timeout = d
	n.mu.Unlock()
}

// timeout returns the current dial/request timeout (thread-safe).
func (n *Node) timeout() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.opts.Timeout
}

// identity returns the node's current identity (thread-safe).
func (n *Node) identity() *pkc.Identity {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.id
}

// identities returns the current identity followed by grace-period
// predecessors, newest first.
func (n *Node) identities() []*pkc.Identity {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*pkc.Identity, 0, 1+len(n.prev))
	out = append(out, n.id)
	return append(out, n.prev...)
}

// Listen starts a node on addr ("127.0.0.1:0" for an ephemeral port).
func Listen(addr string, opts Options) (*Node, error) {
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = defaultProbeTimeout
	}
	if opts.ProbeTimeout > opts.Timeout {
		opts.ProbeTimeout = opts.Timeout
	}
	if opts.OutboxFlushInterval <= 0 {
		opts.OutboxFlushInterval = defaultFlushInterval
	}
	if opts.PoolSize <= 0 {
		opts.PoolSize = transport.DefaultMaxConnsPerPeer
	}
	if opts.MaxStreams <= 0 {
		opts.MaxStreams = transport.DefaultMaxStreams
	}
	if opts.IdleTimeout <= 0 {
		opts.IdleTimeout = transport.DefaultIdleTimeout
	}
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = defaultMaxSessions
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = defaultSyncInterval
	}
	if opts.HandoffCap <= 0 {
		opts.HandoffCap = defaultHandoffCap
	}
	if opts.ReportBatchSize <= 0 {
		opts.ReportBatchSize = defaultReportBatchSize
	}
	if opts.ReportBatchSize > MaxBatchReports {
		opts.ReportBatchSize = MaxBatchReports
	}
	if opts.VerifyWorkers <= 0 {
		opts.VerifyWorkers = runtime.GOMAXPROCS(0)
	}
	if opts.VerifyQueue <= 0 {
		opts.VerifyQueue = defaultVerifyQueue
	}
	if opts.AdmissionSolveLimit <= 0 {
		opts.AdmissionSolveLimit = defaultAdmissionSolveLimit
	}
	if opts.AdmissionSolveLimit > pkc.MaxAdmissionBits {
		opts.AdmissionSolveLimit = pkc.MaxAdmissionBits
	}
	if opts.AdmissionBurst <= 0 {
		opts.AdmissionBurst = 2 * opts.ReportBatchSize
	}
	if opts.SnapshotTTL <= 0 {
		opts.SnapshotTTL = defaultSnapshotTTL
	}
	if opts.AuditSample <= 0 {
		opts.AuditSample = defaultAuditSample
	}
	if opts.AuditQuarantineThreshold <= 0 {
		opts.AuditQuarantineThreshold = defaultAuditQuarantineThreshold
	}
	if len(opts.Replicas) > 0 && !opts.Agent {
		return nil, fmt.Errorf("node: Replicas requires Agent")
	}
	if opts.EvidenceCap > 0 && !opts.Agent {
		return nil, fmt.Errorf("node: EvidenceCap requires Agent")
	}
	id, err := pkc.NewIdentity(nil)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("node: listen: %w", err)
	}
	n := &Node{
		id:            id,
		opts:          opts,
		ln:            ln,
		ages:          onion.NewAgeTracker(),
		hs:            make(map[pkc.Nonce]onion.RelayAnswer),
		pending:       make(map[pkc.Nonce]chan trustResponse),
		pendingAcks:   make(map[pkc.Nonce]*batchAckWait),
		pendingStatus: make(map[pkc.Nonce]chan ReplStatus),
		pendingProofs: make(map[pkc.Nonce]*proofWait),
		dialer:        opts.Dialer,
		reg:           opts.Metrics,
		flushCh:       make(chan struct{}, 1),
		closeCh:       make(chan struct{}),
		sessionSem:    make(chan struct{}, opts.MaxSessions),
	}
	n.place = newPlacement(opts)
	if opts.ProofCache > 0 {
		n.proofCache = newProofCache(opts.ProofCache, opts.SnapshotTTL)
	}
	if n.dialer == nil {
		n.dialer = resilience.NetDialer("tcp")
	}
	if n.reg == nil {
		n.reg = metrics.NewRegistry()
	}
	n.cnt.bind(n.reg)
	n.bindFrameCounters(n.reg)
	n.pool = transport.New(transport.Options{
		Dialer:          n.dialer,
		MaxConnsPerPeer: opts.PoolSize,
		MaxStreams:      opts.MaxStreams,
		IdleTimeout:     opts.IdleTimeout,
		Metrics:         n.reg,
	})
	// Seed the retry jitter from the node identity so distinct nodes desync
	// their backoff schedules while one node's runs stay reproducible for a
	// fixed identity (tests inject identities via the fault dialer seam
	// instead, so this only needs to vary per node).
	n.retrier = resilience.NewRetrier(opts.Retry, int64(id.ID[0])<<8|int64(id.ID[1]))
	n.retrier.OnRetry = func(int, error) { n.cnt.retries.Inc() }
	n.outbox, err = resilience.OpenOutbox(opts.OutboxPath, opts.OutboxCap)
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("node: open outbox: %w", err)
	}
	n.cnt.outboxDepth.Set(int64(n.outbox.Depth()))
	if opts.Agent {
		// The replicator exists before the store opens so the store's commit
		// tap can feed it; senders start only after everything else is wired.
		var hook func([]byte)
		if len(opts.Replicas) > 0 {
			n.repl, err = newReplicator(n, id)
			if err != nil {
				ln.Close()
				n.outbox.Close()
				return nil, err
			}
			hook = n.repl.onCommit
		}
		st, err := repstore.Open(opts.StoreDir, repstore.Options{OnCommit: hook, Shards: opts.StoreShards, EvidenceCap: opts.EvidenceCap})
		if err != nil {
			ln.Close()
			n.outbox.Close()
			if n.repl != nil {
				n.repl.closeOutboxes()
			}
			return nil, fmt.Errorf("node: open report store: %w", err)
		}
		n.agent = agentdir.NewWithStore(id, 0, st)
		n.replicas = newReplicaSet(opts.ReplicaOf, opts.ReplicaPeers)
		n.admission = newAdmissionGate(opts.AdmissionPoWBits, opts.AdmissionRate, opts.AdmissionBurst, opts.AdmissionCap)
		n.startIngestPool(opts.VerifyWorkers, opts.VerifyQueue)
		if n.repl != nil {
			n.repl.start()
		}
	}
	n.wg.Add(1)
	go n.acceptLoop()
	n.outboxWG.Add(1)
	go n.flushLoop()
	return n, nil
}

// ID returns the node's identity.
func (n *Node) ID() pkc.NodeID { return n.identity().ID }

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// SignPublic returns the node's signature public key (SP).
func (n *Node) SignPublic() ed25519.PublicKey { return n.identity().Sign.Public }

// AnonPublic returns the node's anonymity public key (AP).
func (n *Node) AnonPublic() *ecdh.PublicKey { return n.identity().Anon.Public }

// Agent returns the node's agent state (nil for non-agents), for inspection.
func (n *Node) Agent() *agentdir.Agent { return n.agent }

// Close shuts the node down, waits for in-flight handlers, and flushes the
// agent's report store (snapshot + WAL release) when one is attached. Reports
// still queued in the outbox stay journaled (when OutboxPath is set) for the
// next run.
func (n *Node) Close() error {
	if !n.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(n.closeCh)
	err := n.ln.Close()
	n.outboxWG.Wait()
	if n.repl != nil {
		n.repl.wg.Wait() // sender loops exit on closeCh
	}
	_ = n.pool.Close() // drains in-flight outbound requests
	n.closeSessions()  // inbound sessions would otherwise linger to idle timeout
	n.wg.Wait()
	if n.ingest != nil {
		n.ingest.stop() // verification workers must quit before the store closes
	}
	if oerr := n.outbox.Close(); err == nil {
		err = oerr
	}
	if n.agent != nil {
		if serr := n.agent.Close(); err == nil {
			err = serr
		}
	}
	if n.repl != nil {
		n.repl.closeOutboxes()
	}
	if rerr := n.closeReplicaStores(); err == nil {
		err = rerr
	}
	return err
}

func (n *Node) isClosed() bool {
	return n.closed.Load()
}

// handle dispatches one inbound frame. Handshake frames answer through the
// responder (same stream on a session, same socket for a legacy one-shot);
// onion frames are one-way.
func (n *Node) handle(typ wire.MsgType, payload []byte, r transport.Responder) {
	switch typ {
	case wire.TRelayRequest:
		n.handleRelayRequest(r, payload)
	case wire.TKeyVerify:
		n.handleKeyVerify(r, payload)
	case wire.TOnion:
		n.handleOnion(payload)
	case wire.TAgentListReq:
		n.handleAgentListReq(payload)
	case wire.TAgentListResp:
		n.handleAgentListResp(payload)
	case wire.TPing:
		// §3.4.3 backup probe: echo the payload so the prober can match it.
		_ = r.Respond(wire.TPong, payload)
	case wire.RReplicate:
		n.handleReplicate(r, payload)
	case wire.RDigest:
		n.handleDigest(r, payload)
	case wire.RRepair:
		n.handleRepair(r, payload)
	case wire.RFetch:
		n.handleFetch(r, payload)
	case wire.TPlacementReq:
		n.handlePlacementReq(r, payload)
	case wire.TPlacement:
		n.handlePlacementPush(payload)
	case wire.RHandoff:
		n.handleHandoff(r, payload)
	}
}

func (n *Node) handleRelayRequest(r transport.Responder, payload []byte) {
	req, err := onion.DecodeRelayRequest(payload)
	if err != nil {
		return
	}
	ans, err := onion.AnswerRelayRequest(n.identity(), n.Addr(), req, nil)
	if err != nil {
		return
	}
	n.mu.Lock()
	n.hs[ans.Nonce] = ans
	n.mu.Unlock()
	_ = r.Respond(wire.TRelayResponse, ans.Response)
}

func (n *Node) handleKeyVerify(r transport.Responder, payload []byte) {
	kv, err := onion.OpenKeyVerify(n.identity(), payload)
	if err != nil {
		return
	}
	n.mu.Lock()
	_, ok := n.hs[kv.Nonce]
	if ok {
		delete(n.hs, kv.Nonce) // one confirmation per handshake: replay-proof
	}
	n.mu.Unlock()
	if !ok {
		return
	}
	confirm, err := onion.ConfirmKeyVerify(n.Addr(), kv, nil)
	if err != nil {
		return
	}
	_ = r.Respond(wire.TKeyConfirm, confirm)
}

// handleOnion peels one layer and either forwards or consumes the payload.
func (n *Node) handleOnion(payload []byte) {
	d := wire.NewDecoder(payload)
	blob := d.Bytes()
	innerType := wire.MsgType(d.U64())
	inner := d.Bytes()
	if d.Finish() != nil {
		return
	}
	res, ok := n.peelAny(blob)
	if !ok {
		n.stats.onionsRejcted.Add(1)
		return
	}
	if !res.Exit {
		n.stats.onionsForwarded.Add(1)
		// Relay: forward to the next hop; the inner payload is untouched, so
		// relays learn nothing about content or endpoints.
		var e wire.Encoder
		e.Bytes(res.Inner).U64(uint64(innerType)).Bytes(inner)
		_ = n.send(res.Next, wire.TOnion, e.Encode())
		return
	}
	n.stats.onionsExited.Add(1)
	switch innerType {
	case wire.TTrustReq:
		n.handleTrustReq(inner)
	case wire.TTrustResp:
		n.handleTrustResp(inner)
	case wire.TReport:
		n.handleReport(inner)
	case wire.TKeyUpdate:
		n.handleKeyUpdate(inner)
	case wire.TReplStatusReq:
		n.handleReplStatusReq(inner)
	case wire.TReplStatusResp:
		n.handleReplStatusResp(inner)
	case wire.TReportBatch:
		n.handleReportBatch(inner)
	case wire.TReportBatchAck:
		n.handleReportBatchAck(inner)
	case wire.TProofReq:
		n.handleProofReq(inner)
	case wire.TProofResp:
		n.handleProofResp(inner)
	case wire.TAdvisory:
		n.handleAdvisory(inner)
	}
}

// peelAny peels an onion layer with the current identity or a grace-period
// predecessor (rotation keeps old onions usable briefly).
func (n *Node) peelAny(blob []byte) (onion.PeelResult, bool) {
	for _, id := range n.identities() {
		if res, err := onion.Peel(id.Anon, blob); err == nil {
			return res, true
		}
	}
	return onion.PeelResult{}, false
}

// openAny opens a sealed payload with the current identity or a grace-period
// predecessor, returning the identity that succeeded.
func (n *Node) openAny(sealed []byte) (*pkc.Identity, []byte, bool) {
	for _, id := range n.identities() {
		if plain, err := id.Anon.Open(sealed); err == nil {
			return id, plain, true
		}
	}
	return nil, nil, false
}

// sendTimeout writes one frame to addr within budget, over a pooled session
// connection when the peer speaks the session protocol and a one-shot dial
// when it is legacy. Single attempt; send adds retries.
func (n *Node) sendTimeout(addr string, typ wire.MsgType, payload []byte, budget time.Duration) error {
	return n.pool.Send(addr, typ, payload, budget)
}

// send dials addr and writes one frame, retrying transient failures under
// the node's retry policy.
func (n *Node) send(addr string, typ wire.MsgType, payload []byte) error {
	return n.retrier.Do(func(_ int, perAttempt time.Duration) error {
		return n.sendTimeout(addr, typ, payload, n.attemptBudget(perAttempt))
	})
}

// roundTripTimeout writes one frame to addr and waits for its matched
// response, all within budget — multiplexed over a pooled session
// connection, or via a one-shot dial for legacy peers. Single attempt;
// roundTrip adds retries.
func (n *Node) roundTripTimeout(addr string, typ wire.MsgType, payload []byte, budget time.Duration) (wire.MsgType, []byte, error) {
	return n.pool.RoundTrip(addr, typ, payload, budget)
}

// roundTrip dials addr, writes one frame, and reads one response frame,
// retrying transient failures under the node's retry policy.
func (n *Node) roundTrip(addr string, typ wire.MsgType, payload []byte) (wire.MsgType, []byte, error) {
	var (
		rtyp wire.MsgType
		resp []byte
	)
	err := n.retrier.Do(func(_ int, perAttempt time.Duration) error {
		var aerr error
		rtyp, resp, aerr = n.roundTripTimeout(addr, typ, payload, n.attemptBudget(perAttempt))
		return aerr
	})
	if err != nil {
		return 0, nil, err
	}
	return rtyp, resp, nil
}

// attemptBudget resolves the per-attempt deadline: the retry policy's when
// set, the node timeout otherwise.
func (n *Node) attemptBudget(perAttempt time.Duration) time.Duration {
	if perAttempt > 0 {
		return perAttempt
	}
	return n.timeout()
}

// nextSeq returns a fresh non-decreasing onion sequence number.
func (n *Node) nextSeq() uint64 {
	n.seqMu.Lock()
	defer n.seqMu.Unlock()
	n.seq++
	return n.seq
}
