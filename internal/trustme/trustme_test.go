package trustme

import (
	"testing"

	"hirep/internal/simnet"
	"hirep/internal/topology"
	"hirep/internal/trust"
	"hirep/internal/xrand"
)

func buildSystem(t testing.TB, n int, cfg Config, seed int64) *System {
	t.Helper()
	rng := xrand.New(seed)
	g, err := topology.Generate(topology.GenSpec{Model: topology.PowerLaw, N: n, AvgDegree: 4}, rng.Split("topo"))
	if err != nil {
		t.Fatal(err)
	}
	net, err := simnet.New(g, simnet.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	oracle := trust.NewOracle(n, 0.5, rng.Split("oracle"))
	sys, err := NewSystem(net, oracle, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{THAsPerPeer: 0, TTL: 7, CandidatesPerTx: 1, Rating: trust.DefaultRatingModel()},
		{THAsPerPeer: 3, TTL: 0, CandidatesPerTx: 1, Rating: trust.DefaultRatingModel()},
		{THAsPerPeer: 3, TTL: 7, MaliciousFrac: 2, CandidatesPerTx: 1, Rating: trust.DefaultRatingModel()},
		{THAsPerPeer: 3, TTL: 7, CandidatesPerTx: 0, Rating: trust.DefaultRatingModel()},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTHAAssignment(t *testing.T) {
	sys := buildSystem(t, 200, DefaultConfig(), 1)
	for i := 0; i < 200; i++ {
		thas := sys.THAsOf(topology.NodeID(i))
		if len(thas) != sys.cfg.THAsPerPeer {
			t.Fatalf("peer %d has %d THAs", i, len(thas))
		}
		seen := map[topology.NodeID]bool{}
		for _, th := range thas {
			if th == topology.NodeID(i) {
				t.Fatalf("peer %d is its own THA", i)
			}
			if seen[th] {
				t.Fatalf("duplicate THA for %d", i)
			}
			seen[th] = true
		}
	}
}

func TestTransactionCollectsTHAVotes(t *testing.T) {
	sys := buildSystem(t, 200, DefaultConfig(), 2)
	res := sys.RunRandomTransaction()
	if res.TrustMessages == 0 {
		t.Fatal("no traffic")
	}
	ok := false
	for _, c := range res.Candidates {
		if c == res.Chosen {
			ok = true
		}
	}
	if !ok {
		t.Fatal("chosen not among candidates")
	}
}

func TestDoubleBroadcastCost(t *testing.T) {
	// TrustMe's per-transaction traffic must be at flood scale — much larger
	// than hiREP's O(c) unicasts, and roughly two floods.
	sys := buildSystem(t, 300, DefaultConfig(), 3)
	res := sys.RunRandomTransaction()
	oneFlood := sys.net.Graph().FloodEdgeCount(res.Requestor, sys.cfg.TTL)
	if res.TrustMessages < int64(oneFlood) {
		t.Fatalf("traffic %d below one flood %d", res.TrustMessages, oneFlood)
	}
}

func TestReportsReachTHAs(t *testing.T) {
	sys := buildSystem(t, 150, DefaultConfig(), 4)
	// Run enough transactions that some provider's THAs accumulate reports.
	total := 0
	for i := 0; i < 30; i++ {
		sys.RunRandomTransaction()
	}
	for i := range sys.tallies {
		for _, tl := range sys.tallies[i] {
			total += tl.pos + tl.neg
		}
	}
	if total == 0 {
		t.Fatal("no reports stored at THAs after 30 transactions")
	}
}

func TestReportsStoredOnlyAtTHAs(t *testing.T) {
	sys := buildSystem(t, 150, DefaultConfig(), 5)
	for i := 0; i < 20; i++ {
		sys.RunRandomTransaction()
	}
	for node := range sys.tallies {
		for subject := range sys.tallies[node] {
			if !sys.isTHAOf(topology.NodeID(node), subject) {
				t.Fatalf("node %d stores trust for %d without being its THA", node, subject)
			}
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []TxResult {
		sys := buildSystem(t, 120, DefaultConfig(), 6)
		out := make([]TxResult, 5)
		for i := range out {
			out[i] = sys.RunRandomTransaction()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Chosen != b[i].Chosen || a[i].TrustMessages != b[i].TrustMessages {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}

func TestOracleMismatchRejected(t *testing.T) {
	rng := xrand.New(1)
	g, _ := topology.Generate(topology.GenSpec{Model: topology.PowerLaw, N: 50, AvgDegree: 4}, rng)
	net, _ := simnet.New(g, simnet.DefaultConfig(1))
	if _, err := NewSystem(net, trust.NewOracle(10, 0.5, rng), DefaultConfig(), rng); err == nil {
		t.Fatal("mismatch accepted")
	}
}
