// Package trustme implements a TrustMe-style baseline (Singh & Liu, P2P'03),
// which the paper contrasts with hiREP in §2: trust values are stored at
// randomly assigned trust-holding agents (THAs) rather than self-selected
// trusted agents, and the protocol "deploys broadcasting twice" — the trust
// query is broadcast to the entire system so the subject's THAs can answer,
// and after each transaction the report is broadcast so the THAs can store
// it.
//
// The package exists to quantify the paper's qualitative claim that random
// THA assignment plus double broadcast scatters trust state across the whole
// system and keeps per-transaction traffic at flood scale, where hiREP's is
// O(c).
package trustme

import (
	"fmt"
	"math"

	"hirep/internal/simnet"
	"hirep/internal/topology"
	"hirep/internal/trust"
	"hirep/internal/xrand"
)

// Message kinds.
const (
	KindQuery     = "trustme/query"
	KindQueryResp = "trustme/query-resp"
	KindReport    = "trustme/report"
)

// Interned kind IDs for the send fast path (simnet.InternKind).
var (
	kindQueryID     = simnet.InternKind(KindQuery)
	kindQueryRespID = simnet.InternKind(KindQueryResp)
	kindReportID    = simnet.InternKind(KindReport)
)

// Config parameterizes the baseline.
type Config struct {
	// THAsPerPeer is how many trust-holding agents the bootstrap server
	// assigns to each peer.
	THAsPerPeer int
	// TTL bounds the two broadcasts; TrustMe floods the entire system, so
	// pick a TTL at least the network diameter for fidelity.
	TTL int
	// MaliciousFrac is the fraction of nodes that misbehave as THAs.
	MaliciousFrac float64
	// CandidatesPerTx matches the other systems' workload.
	CandidatesPerTx int
	// Rating is the fallback evaluation model for THAs without reports.
	Rating trust.RatingModel
}

// DefaultConfig returns a TrustMe configuration comparable to Table 1.
func DefaultConfig() Config {
	return Config{THAsPerPeer: 3, TTL: 7, MaliciousFrac: 0.1, CandidatesPerTx: 3, Rating: trust.DefaultRatingModel()}
}

// Validate checks parameter sanity.
func (c Config) Validate() error {
	switch {
	case c.THAsPerPeer < 1:
		return fmt.Errorf("trustme: THAsPerPeer must be >= 1, got %d", c.THAsPerPeer)
	case c.TTL < 1:
		return fmt.Errorf("trustme: TTL must be >= 1, got %d", c.TTL)
	case c.MaliciousFrac < 0 || c.MaliciousFrac > 1:
		return fmt.Errorf("trustme: MaliciousFrac out of [0,1]: %v", c.MaliciousFrac)
	case c.CandidatesPerTx < 1:
		return fmt.Errorf("trustme: CandidatesPerTx must be >= 1, got %d", c.CandidatesPerTx)
	}
	return c.Rating.Validate()
}

type (
	queryPayload struct {
		pollID     uint64
		origin     topology.NodeID
		candidates []topology.NodeID
		ttl        int
	}
	queryRespPayload struct {
		pollID  uint64
		tha     topology.NodeID
		subject topology.NodeID
		value   trust.Value
	}
	reportPayload struct {
		subject  topology.NodeID
		positive bool
		ttl      int
		floodID  uint64
	}
)

type tally struct{ pos, neg int }

func (t tally) estimate() trust.Value {
	return trust.Value((float64(t.pos) + 0.5) / (float64(t.pos+t.neg) + 1))
}

type pollState struct {
	id       uint64
	byCand   map[topology.NodeID]*trust.Aggregate
	lastResp simnet.Time
	votes    int
}

// TxResult mirrors the other systems' per-transaction summary.
type TxResult struct {
	Requestor     topology.NodeID
	Candidates    []topology.NodeID
	Estimates     []trust.Value
	Chosen        topology.NodeID
	Outcome       bool
	SqErr         float64
	SqN           int
	ResponseTime  simnet.Time
	TrustMessages int64
}

// MSE returns the transaction's mean squared estimation error.
func (r TxResult) MSE() float64 {
	if r.SqN == 0 {
		return 0
	}
	return r.SqErr / float64(r.SqN)
}

// System is a TrustMe deployment over a simulated network.
type System struct {
	net    *simnet.Network
	oracle *trust.Oracle
	cfg    Config
	rng    *xrand.RNG
	wrng   *xrand.RNG
	// thasOf[p] lists the THAs that hold p's trust value (bootstrap-server
	// assignment); thaRole[n] marks misbehaving THAs.
	thasOf    [][]topology.NodeID
	malicious []bool
	nodeRNGs  []*xrand.RNG
	tallies   []map[topology.NodeID]tally // per-THA stored reports
	seen      map[uint64]map[topology.NodeID]bool
	cur       *pollState
	nextID    uint64
}

// NewSystem builds the baseline; THA assignment emulates the bootstrap
// server's random choice.
func NewSystem(net *simnet.Network, oracle *trust.Oracle, cfg Config, rng *xrand.RNG) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := net.Graph().N()
	if oracle.N() != n {
		return nil, fmt.Errorf("trustme: oracle has %d nodes, graph has %d", oracle.N(), n)
	}
	if cfg.THAsPerPeer > n-1 {
		return nil, fmt.Errorf("trustme: %d THAs per peer exceed population", cfg.THAsPerPeer)
	}
	s := &System{
		net:       net,
		oracle:    oracle,
		cfg:       cfg,
		rng:       rng.Split("trustme"),
		thasOf:    make([][]topology.NodeID, n),
		malicious: make([]bool, n),
		nodeRNGs:  make([]*xrand.RNG, n),
		tallies:   make([]map[topology.NodeID]tally, n),
		seen:      make(map[uint64]map[topology.NodeID]bool),
	}
	s.wrng = s.rng.Split("workload")
	roleRNG := s.rng.Split("roles")
	assignRNG := s.rng.Split("tha-assign")
	for i := 0; i < n; i++ {
		s.malicious[i] = roleRNG.Bool(cfg.MaliciousFrac)
		s.nodeRNGs[i] = s.rng.SplitN("node", i)
		s.tallies[i] = make(map[topology.NodeID]tally)
		for _, idx := range assignRNG.Choose(n-1, cfg.THAsPerPeer) {
			id := topology.NodeID(idx)
			if id >= topology.NodeID(i) {
				id++
			}
			s.thasOf[i] = append(s.thasOf[i], id)
		}
		id := topology.NodeID(i)
		net.SetHandler(id, func(nw *simnet.Network, m simnet.Message) { s.dispatch(nw, m) })
	}
	return s, nil
}

// THAsOf exposes a peer's trust-holding agents for tests.
func (s *System) THAsOf(p topology.NodeID) []topology.NodeID {
	return append([]topology.NodeID(nil), s.thasOf[p]...)
}

func (s *System) dispatch(nw *simnet.Network, m simnet.Message) {
	switch m.Kind {
	case KindQuery:
		s.onQuery(nw, m)
	case KindQueryResp:
		s.onQueryResp(nw, m)
	case KindReport:
		s.onReport(nw, m)
	}
}

// isTHAOf reports whether node holds subject's trust value.
func (s *System) isTHAOf(node, subject topology.NodeID) bool {
	for _, t := range s.thasOf[subject] {
		if t == node {
			return true
		}
	}
	return false
}

func (s *System) onQuery(nw *simnet.Network, m simnet.Message) {
	p := m.Payload.(queryPayload)
	seen := s.seen[p.pollID]
	if seen == nil {
		seen = make(map[topology.NodeID]bool)
		s.seen[p.pollID] = seen
	}
	if seen[m.To] {
		return
	}
	seen[m.To] = true
	for _, c := range p.candidates {
		if !s.isTHAOf(m.To, c) {
			continue
		}
		v := s.thaEstimate(m.To, c)
		nw.SendKind(m.To, p.origin, kindQueryRespID, queryRespPayload{pollID: p.pollID, tha: m.To, subject: c, value: v})
	}
	if p.ttl <= 1 {
		return
	}
	for _, nb := range s.net.Graph().Neighbors(m.To) {
		if nb != m.From {
			nw.SendKind(m.To, nb, kindQueryID, queryPayload{pollID: p.pollID, origin: p.origin, candidates: p.candidates, ttl: p.ttl - 1})
		}
	}
}

// thaEstimate is a THA's answer about a subject: stored reports when
// available (honest THAs), the rating model otherwise; misbehaving THAs
// answer inversely.
func (s *System) thaEstimate(tha, subject topology.NodeID) trust.Value {
	if !s.malicious[tha] {
		if t, ok := s.tallies[tha][subject]; ok && t.pos+t.neg >= 2 {
			return t.estimate()
		}
	}
	return s.cfg.Rating.Evaluate(!s.malicious[tha], s.oracle.Trustworthy(int(subject)), s.nodeRNGs[tha])
}

func (s *System) onQueryResp(nw *simnet.Network, m simnet.Message) {
	p := m.Payload.(queryRespPayload)
	if s.cur == nil || s.cur.id != p.pollID {
		return
	}
	agg, ok := s.cur.byCand[p.subject]
	if !ok {
		return
	}
	agg.Add(p.value, 1)
	s.cur.votes++
	s.cur.lastResp = nw.Now()
}

func (s *System) onReport(nw *simnet.Network, m simnet.Message) {
	p := m.Payload.(reportPayload)
	seen := s.seen[p.floodID]
	if seen == nil {
		seen = make(map[topology.NodeID]bool)
		s.seen[p.floodID] = seen
	}
	if seen[m.To] {
		return
	}
	seen[m.To] = true
	if s.isTHAOf(m.To, p.subject) {
		t := s.tallies[m.To][p.subject]
		if p.positive {
			t.pos++
		} else {
			t.neg++
		}
		s.tallies[m.To][p.subject] = t
	}
	if p.ttl <= 1 {
		return
	}
	for _, nb := range s.net.Graph().Neighbors(m.To) {
		if nb != m.From {
			nw.SendKind(m.To, nb, kindReportID, reportPayload{subject: p.subject, positive: p.positive, ttl: p.ttl - 1, floodID: p.floodID})
		}
	}
}

// RunTransaction performs TrustMe's double-broadcast transaction: query
// flood, THA responses, provider choice, then report flood.
func (s *System) RunTransaction(requestor topology.NodeID, candidates []topology.NodeID) TxResult {
	before := s.net.Count(KindQuery) + s.net.Count(KindQueryResp) + s.net.Count(KindReport)
	s.nextID++
	poll := &pollState{id: s.nextID, byCand: make(map[topology.NodeID]*trust.Aggregate)}
	for _, c := range candidates {
		poll.byCand[c] = &trust.Aggregate{}
	}
	s.cur = poll
	s.seen[poll.id] = map[topology.NodeID]bool{requestor: true}
	start := s.net.Now()
	for _, nb := range s.net.Graph().Neighbors(requestor) {
		s.net.SendKind(requestor, nb, kindQueryID, queryPayload{pollID: poll.id, origin: requestor, candidates: candidates, ttl: s.cfg.TTL})
	}
	s.net.Run(0)
	s.cur = nil
	delete(s.seen, poll.id)

	res := TxResult{Requestor: requestor, Candidates: candidates, Estimates: make([]trust.Value, len(candidates))}
	bestIdx, bestVal := -1, -1.0
	for i, c := range candidates {
		v, ok := poll.byCand[c].Value()
		if !ok {
			res.Estimates[i] = trust.Value(math.NaN())
			d := 0.5 - float64(s.oracle.TrueValue(int(c)))
			res.SqErr += d * d
			res.SqN++
			continue
		}
		res.Estimates[i] = v
		d := float64(v) - float64(s.oracle.TrueValue(int(c)))
		res.SqErr += d * d
		res.SqN++
		if float64(v) > bestVal {
			bestVal, bestIdx = float64(v), i
		}
	}
	if bestIdx < 0 {
		bestIdx = s.wrng.Intn(len(candidates))
	}
	res.Chosen = candidates[bestIdx]
	res.Outcome = s.oracle.TransactionOutcome(int(res.Chosen))
	if poll.lastResp > 0 {
		res.ResponseTime = poll.lastResp - start
	}

	// Second broadcast: the transaction report floods so the chosen
	// provider's THAs can store it.
	s.nextID++
	s.seen[s.nextID] = map[topology.NodeID]bool{requestor: true}
	for _, nb := range s.net.Graph().Neighbors(requestor) {
		s.net.SendKind(requestor, nb, kindReportID, reportPayload{subject: res.Chosen, positive: res.Outcome, ttl: s.cfg.TTL, floodID: s.nextID})
	}
	s.net.Run(0)
	delete(s.seen, s.nextID)

	res.TrustMessages = s.net.Count(KindQuery) + s.net.Count(KindQueryResp) + s.net.Count(KindReport) - before
	return res
}

// RunRandomTransaction mirrors the shared workload unit.
func (s *System) RunRandomTransaction() TxResult {
	n := s.net.Graph().N()
	requestor := topology.NodeID(s.wrng.Intn(n))
	return s.RunTransaction(requestor, s.PickCandidates(requestor))
}

// PickCandidates draws CandidatesPerTx distinct provider candidates != requestor.
func (s *System) PickCandidates(requestor topology.NodeID) []topology.NodeID {
	n := s.net.Graph().N()
	out := make([]topology.NodeID, 0, s.cfg.CandidatesPerTx)
	for _, idx := range s.wrng.Choose(n-1, s.cfg.CandidatesPerTx) {
		id := topology.NodeID(idx)
		if id >= requestor {
			id++
		}
		out = append(out, id)
	}
	return out
}
