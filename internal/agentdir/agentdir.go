// Package agentdir implements the reputation-agent side of hiREP (§3.5).
//
// A trusted reputation agent keeps a public-key list
// {nodeID_1, SP_1; ...; nodeID_n, SP_n} of the peers that chose it, accepts
// signed transaction reports, and computes trust values for subjects from the
// reports it has accumulated. The paper leaves the agent's computation model
// open ("a reputation agent computes the trust value of each node using its
// own trust value computation model"); this implementation uses the
// Laplace-smoothed positive-report fraction, the standard Beta-prior
// estimator used by EigenTrust-era systems.
package agentdir

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sync"

	"hirep/internal/pkc"
	"hirep/internal/repstore"
	"hirep/internal/trust"
)

// Errors returned by the agent.
var (
	ErrUnknownReporter = errors.New("agentdir: reporter's key not in public key list")
	ErrBadSignature    = errors.New("agentdir: report signature invalid")
	ErrBadBinding      = errors.New("agentdir: public key does not hash to node id")
	ErrReplayedReport  = errors.New("agentdir: report nonce replayed")
	ErrBadReport       = errors.New("agentdir: malformed report")
)

// Report is one transaction result: reporter observed subject behave
// positively or negatively.
type Report struct {
	Reporter pkc.NodeID
	Subject  pkc.NodeID
	Positive bool
	Nonce    pkc.Nonce
}

// reportBody is the byte string a reporter signs: subject || positive || nonce.
func reportBody(subject pkc.NodeID, positive bool, nonce pkc.Nonce) []byte {
	out := make([]byte, 0, pkc.NodeIDSize+1+pkc.NonceSize)
	out = append(out, subject[:]...)
	if positive {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return append(out, nonce[:]...)
}

// SignReport produces the signed wire form of a report, the
// "(SR_p(result, nounce), nodeID_p)" of §3.5.3: body || signature.
func SignReport(reporter *pkc.Identity, subject pkc.NodeID, positive bool, nonce pkc.Nonce) []byte {
	body := reportBody(subject, positive, nonce)
	sig := reporter.SignMessage(body)
	out := make([]byte, 0, len(body)+len(sig))
	out = append(out, body...)
	return append(out, sig...)
}

// parseReportWire splits a signed report into body fields and signature.
func parseReportWire(b []byte) (subject pkc.NodeID, positive bool, nonce pkc.Nonce, body, sig []byte, err error) {
	bodyLen := pkc.NodeIDSize + 1 + pkc.NonceSize
	if len(b) != bodyLen+ed25519.SignatureSize {
		err = ErrBadReport
		return
	}
	copy(subject[:], b)
	switch b[pkc.NodeIDSize] {
	case 0:
		positive = false
	case 1:
		positive = true
	default:
		err = ErrBadReport
		return
	}
	copy(nonce[:], b[pkc.NodeIDSize+1:])
	return subject, positive, nonce, b[:bodyLen], b[bodyLen:], nil
}

// ParseReportWire splits a signed report wire into its fields without
// verifying anything — the parsing half of the proof-bundle verifier
// (internal/proof), which re-checks retained evidence signatures itself.
// body and sig alias wire.
func ParseReportWire(wire []byte) (subject pkc.NodeID, positive bool, nonce pkc.Nonce, body, sig []byte, err error) {
	return parseReportWire(wire)
}

// Agent is a trusted reputation agent. Safe for concurrent use (the live
// node serves many peers at once). Report/tally state lives in a
// repstore.Store — sharded in memory for the simulator, WAL-backed on disk
// for the live node — while the public key list and replay cache stay here.
type Agent struct {
	mu      sync.RWMutex
	self    *pkc.Identity
	keys    map[pkc.NodeID]ed25519.PublicKey
	store   *repstore.Store
	replays *pkc.ReplayCache

	// sources are replica stores attached by the node's replication layer:
	// state this agent holds on behalf of other (primary) agents. Served
	// tallies combine the agent's own store with every source, so a promoted
	// standby answers with the dead primary's history (DESIGN.md §10).
	srcMu   sync.RWMutex
	sources map[string]*repstore.Store

	// byReporter counts accepted reports per reporter — the evidence base for
	// the node's per-identity admission rate accounting and the campaign
	// harness's attacker-cost scoring (DESIGN.md §13). byReporterNeg tracks
	// the negative subset, so the audit plane can spot slander campaigns
	// (reporters whose output is overwhelmingly negative, DESIGN.md §15).
	// Its own lock: the hot ingest path must not serialize on the key-list
	// mutex.
	repMu         sync.Mutex
	byReporter    map[pkc.NodeID]int64
	byReporterNeg map[pkc.NodeID]int64
}

// New creates an agent with identity self backed by a pure in-memory store.
// replayCap bounds the nonce replay cache (0 picks a default of 4096).
func New(self *pkc.Identity, replayCap int) *Agent {
	st, _ := repstore.Open("", repstore.Options{}) // in-memory open cannot fail
	return NewWithStore(self, replayCap, st)
}

// NewWithStore creates an agent delegating report state to store — the
// durable path for live nodes. Nonces recovered from the store's WAL tail
// re-seed the replay cache, so a restart does not reopen the replay window
// for the most recent reports.
func NewWithStore(self *pkc.Identity, replayCap int, store *repstore.Store) *Agent {
	if replayCap <= 0 {
		replayCap = 4096
	}
	a := &Agent{
		self:          self,
		keys:          make(map[pkc.NodeID]ed25519.PublicKey),
		store:         store,
		replays:       pkc.NewReplayCache(replayCap),
		byReporter:    make(map[pkc.NodeID]int64),
		byReporterNeg: make(map[pkc.NodeID]int64),
	}
	for _, n := range store.RecoveredNonces() {
		a.replays.Observe(n)
	}
	return a
}

// Store exposes the agent's backing report store.
func (a *Agent) Store() *repstore.Store { return a.store }

// Close flushes and releases the backing store (a no-op for the in-memory
// backend).
func (a *Agent) Close() error { return a.store.Close() }

// ID returns the agent's node ID.
func (a *Agent) ID() pkc.NodeID { return a.self.ID }

// RegisterKey adds a peer's signature public key to the public key list
// (§3.5.2: done when a trust request arrives from an unknown nodeID). The
// binding nodeID = SHA-1(SP) is verified; a mismatch is a spoofing attempt.
func (a *Agent) RegisterKey(id pkc.NodeID, sp ed25519.PublicKey) error {
	if !pkc.VerifyBinding(id, sp) {
		return ErrBadBinding
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.keys[id] = sp
	return nil
}

// KnowsKey reports whether id is in the public key list.
func (a *Agent) KnowsKey(id pkc.NodeID) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	_, ok := a.keys[id]
	return ok
}

// KeyCount returns the size of the public key list.
func (a *Agent) KeyCount() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.keys)
}

// SubmitReport verifies and stores a signed report from reporter (§3.5.3).
// The reporter's key must already be registered ("E then locates SP_p in its
// public key list using nodeID_p"); the signature must verify ("if the result
// cannot be decrypted, the message will be dropped"); the nonce must be
// fresh.
func (a *Agent) SubmitReport(reporter pkc.NodeID, wire []byte) (Report, error) {
	subject, positive, nonce, body, sig, err := parseReportWire(wire)
	if err != nil {
		return Report{}, err
	}
	a.mu.RLock()
	sp, ok := a.keys[reporter]
	a.mu.RUnlock()
	if !ok {
		return Report{}, ErrUnknownReporter
	}
	// Signature verification and the store append both run outside the key
	// lock: the hot ingest path scales across shards instead of serializing
	// on one agent mutex.
	if !pkc.Verify(sp, body, sig) {
		return Report{}, ErrBadSignature
	}
	if !a.replays.Observe(nonce) {
		return Report{}, ErrReplayedReport
	}
	// SP and Wire ride along as evidence; the store retains them only when
	// its evidence log is armed (repstore.Options.EvidenceCap).
	rec := repstore.Record{Reporter: reporter, Subject: subject, Positive: positive, Nonce: nonce, SP: sp, Wire: wire}
	if err := a.store.Append(rec); err != nil {
		// The report was rejected, not stored: release its nonce so a
		// legitimate retry of the same signed report is not misclassified as
		// a replay once the store recovers.
		a.replays.Forget(nonce)
		return Report{}, err
	}
	var neg int64
	if !positive {
		neg = 1
	}
	a.countAccepted(reporter, 1, neg)
	return Report{Reporter: reporter, Subject: subject, Positive: positive, Nonce: nonce}, nil
}

// countAccepted bumps the reporter's accepted-report tally: n reports total,
// neg of which were negative.
func (a *Agent) countAccepted(reporter pkc.NodeID, n, neg int64) {
	a.repMu.Lock()
	a.byReporter[reporter] += n
	if neg > 0 {
		a.byReporterNeg[reporter] += neg
	}
	a.repMu.Unlock()
}

// ReportsBy returns how many reports from reporter this agent has accepted
// (verified, fresh, and durably stored) since it started.
func (a *Agent) ReportsBy(reporter pkc.NodeID) int64 {
	a.repMu.Lock()
	defer a.repMu.Unlock()
	return a.byReporter[reporter]
}

// ReporterStat is one reporter's accepted-report tally as seen by this agent:
// total accepted reports and the negative subset. The audit plane folds these
// into its slander-skew table (DESIGN.md §15).
type ReporterStat struct {
	Reporter pkc.NodeID
	Reports  int64 // accepted reports, any polarity
	Negative int64 // accepted negative reports
}

// Reporters iterates over per-reporter accepted-report stats, SubjectStat
// style: fn is called once per reporter until it returns false. The snapshot
// is taken under the tally lock, but fn runs outside it, so callbacks may
// re-enter the agent freely. Iteration order is unspecified.
func (a *Agent) Reporters(fn func(ReporterStat) bool) {
	a.repMu.Lock()
	stats := make([]ReporterStat, 0, len(a.byReporter))
	for id, n := range a.byReporter {
		stats = append(stats, ReporterStat{Reporter: id, Reports: n, Negative: a.byReporterNeg[id]})
	}
	a.repMu.Unlock()
	for _, s := range stats {
		if !fn(s) {
			return
		}
	}
}

// SubmitReportBatch verifies and stores a batch of signed reports, all from
// the same reporter, amortizing key lookup and signature dispatch across the
// batch (DESIGN.md §11). It returns one outcome per input wire, index-aligned:
// errs[i] == nil means wires[i] was verified and durably appended and
// reports[i] holds its decoded form; otherwise errs[i] is the same typed
// error SubmitReport would have returned for that wire. Outcomes are
// independent — a forged, replayed, or malformed report rejects alone and
// never blocks a valid neighbor from committing.
//
// Signatures are checked with pkc.VerifyBatch; nonces are observed in batch
// order, so a nonce duplicated within one batch stores its first occurrence
// and rejects the rest as replays, exactly as if they had arrived singly.
func (a *Agent) SubmitReportBatch(reporter pkc.NodeID, wires [][]byte) ([]Report, []error) {
	reports := make([]Report, len(wires))
	errs := make([]error, len(wires))
	a.mu.RLock()
	sp, known := a.keys[reporter]
	a.mu.RUnlock()
	// Parse pass: split every wire, filling in per-report parse failures and
	// collecting the verifiable triples for the batch signature check.
	type parsed struct {
		idx      int
		subject  pkc.NodeID
		positive bool
		nonce    pkc.Nonce
	}
	var (
		valid  []parsed
		bodies [][]byte
		sigs   [][]byte
		keys   []ed25519.PublicKey
	)
	for i, w := range wires {
		subject, positive, nonce, body, sig, err := parseReportWire(w)
		if err != nil {
			errs[i] = err
			continue
		}
		if !known {
			errs[i] = ErrUnknownReporter
			continue
		}
		valid = append(valid, parsed{idx: i, subject: subject, positive: positive, nonce: nonce})
		bodies = append(bodies, body)
		sigs = append(sigs, sig)
		keys = append(keys, sp)
	}
	ok := pkc.VerifyBatch(keys, bodies, sigs)
	// Admission pass, in batch order: replay check, then store append. Both
	// run outside the key lock, like the single-report path.
	var accepted, negAccepted int64
	for j, p := range valid {
		if !ok[j] {
			errs[p.idx] = ErrBadSignature
			continue
		}
		if !a.replays.Observe(p.nonce) {
			errs[p.idx] = ErrReplayedReport
			continue
		}
		rec := repstore.Record{Reporter: reporter, Subject: p.subject, Positive: p.positive, Nonce: p.nonce, SP: sp, Wire: wires[p.idx]}
		if err := a.store.Append(rec); err != nil {
			// Rejected, not stored: release the nonce so a retry of the same
			// signed report is not misclassified as a replay (see SubmitReport).
			a.replays.Forget(p.nonce)
			errs[p.idx] = err
			continue
		}
		reports[p.idx] = Report{Reporter: reporter, Subject: p.subject, Positive: p.positive, Nonce: p.nonce}
		accepted++
		if !p.positive {
			negAccepted++
		}
	}
	if accepted > 0 {
		a.countAccepted(reporter, accepted, negAccepted)
	}
	return reports, errs
}

// ApplyKeyUpdate processes a §3.5 key rotation: after verifying the update
// against the predecessor's registered key, the public-key list entry and
// any report tallies about the old nodeID move to the new nodeID ("map and
// replace an old nodeid to a new nodeid").
func (a *Agent) ApplyKeyUpdate(wire []byte) (pkc.KeyUpdate, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	oldID, err := pkc.PeekKeyUpdateOldID(wire)
	if err != nil {
		return pkc.KeyUpdate{}, err
	}
	oldSP, ok := a.keys[oldID]
	if !ok {
		return pkc.KeyUpdate{}, ErrUnknownReporter
	}
	upd, err := pkc.VerifyKeyUpdate(oldSP, wire)
	if err != nil {
		return pkc.KeyUpdate{}, err
	}
	// Tallies about the old nodeID migrate in the store first (durably, when
	// the store is WAL-backed): Merge can fail on WAL I/O, the key-map swap
	// below cannot, so a failure leaves both keys and tallies untouched —
	// the caller can tell nothing applied. The verified update wire and the
	// old key ride along as the lineage certificate, so a proof bundle
	// spanning this rotation can prove the old→new link to any verifier.
	if err := a.store.MergeCertified(upd.OldID, upd.NewID, oldSP, wire); err != nil {
		return pkc.KeyUpdate{}, err
	}
	delete(a.keys, upd.OldID)
	a.keys[upd.NewID] = upd.NewSP
	return upd, nil
}

// AttachSource registers a replica store under key; its tallies merge into
// every served trust value. Re-attaching a key replaces the store.
func (a *Agent) AttachSource(key string, st *repstore.Store) {
	a.srcMu.Lock()
	defer a.srcMu.Unlock()
	if a.sources == nil {
		a.sources = make(map[string]*repstore.Store)
	}
	a.sources[key] = st
}

// DetachSource removes a replica store registered with AttachSource.
func (a *Agent) DetachSource(key string) {
	a.srcMu.Lock()
	defer a.srcMu.Unlock()
	delete(a.sources, key)
}

// SourceCount returns how many replica stores are attached.
func (a *Agent) SourceCount() int {
	a.srcMu.RLock()
	defer a.srcMu.RUnlock()
	return len(a.sources)
}

// CombinedTally sums the subject's raw counts across the agent's own store
// and every attached replica source. ok is false when no store holds any
// report about the subject.
func (a *Agent) CombinedTally(subject pkc.NodeID) (pos, neg int, ok bool) {
	pos, neg, ok = a.store.Tally(subject)
	a.srcMu.RLock()
	defer a.srcMu.RUnlock()
	for _, st := range a.sources {
		if p, n, has := st.Tally(subject); has {
			pos += p
			neg += n
			ok = true
		}
	}
	return pos, neg, ok
}

// TrustValue computes the agent's estimate for subject from stored reports:
// the Laplace-smoothed positive fraction (p+1)/(p+n+2) over the combined
// tally (own store plus attached replica sources). ok is false when the
// agent has no report about the subject and therefore no opinion.
func (a *Agent) TrustValue(subject pkc.NodeID) (trust.Value, bool) {
	pos, neg, ok := a.CombinedTally(subject)
	if !ok {
		return 0, false
	}
	return trust.Value(float64(pos+1) / float64(pos+neg+2)), true
}

// ReportCount returns the total number of accepted reports.
func (a *Agent) ReportCount() int { return a.store.ReportCount() }

// SubjectCount returns how many distinct subjects have reports.
func (a *Agent) SubjectCount() int { return a.store.SubjectCount() }

// String summarizes the agent for logs.
func (a *Agent) String() string {
	a.mu.RLock()
	nkeys := len(a.keys)
	a.mu.RUnlock()
	return fmt.Sprintf("agent %s: %d keys, %d reports on %d subjects",
		a.self.ID.Short(), nkeys, a.store.ReportCount(), a.store.SubjectCount())
}

// DecodeNonceHint extracts the nonce from a signed report without verifying
// it; transports use it for early deduplication.
func DecodeNonceHint(wire []byte) (pkc.Nonce, error) {
	_, _, nonce, _, _, err := parseReportWire(wire)
	return nonce, err
}

// DecodeSubjectHint extracts the subject from a signed report without
// verifying it; the overlay routing layer uses it to check shard ownership
// before spending any signature work on a mis-routed report.
func DecodeSubjectHint(wire []byte) (pkc.NodeID, error) {
	subject, _, _, _, _, err := parseReportWire(wire)
	return subject, err
}
