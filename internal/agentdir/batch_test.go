package agentdir

import (
	"errors"
	"testing"
)

// TestSubmitReportBatchOutcomes checks that every per-wire outcome of a
// mixed batch matches what SubmitReport would have decided, index-aligned,
// with valid neighbors committing regardless of rejects around them.
func TestSubmitReportBatchOutcomes(t *testing.T) {
	a := New(ident(t), 0)
	p, subject, stranger := ident(t), ident(t), ident(t)
	if err := a.RegisterKey(p.ID, p.Sign.Public); err != nil {
		t.Fatal(err)
	}
	dup := nonce(t)
	wires := [][]byte{
		SignReport(p, subject.ID, true, nonce(t)),        // 0: valid
		SignReport(p, subject.ID, true, dup),             // 1: valid, first use of dup
		SignReport(p, subject.ID, false, dup),            // 2: replay within the batch
		SignReport(stranger, subject.ID, true, nonce(t)), // 3: wrong signing key
		[]byte("garbage"),                                // 4: malformed
		SignReport(p, subject.ID, false, nonce(t)),       // 5: valid, after rejects
	}
	reports, errs := a.SubmitReportBatch(p.ID, wires)
	if len(reports) != len(wires) || len(errs) != len(wires) {
		t.Fatalf("got %d/%d outcomes for %d wires", len(reports), len(errs), len(wires))
	}
	wantErr := []error{nil, nil, ErrReplayedReport, ErrBadSignature, ErrBadReport, nil}
	for i, want := range wantErr {
		if want == nil {
			if errs[i] != nil {
				t.Fatalf("wire %d: unexpected error %v", i, errs[i])
			}
			if reports[i].Reporter != p.ID || reports[i].Subject != subject.ID {
				t.Fatalf("wire %d: decoded report %+v", i, reports[i])
			}
		} else if !errors.Is(errs[i], want) {
			t.Fatalf("wire %d: got %v, want %v", i, errs[i], want)
		}
	}
	if got := a.ReportCount(); got != 3 {
		t.Fatalf("stored %d reports, want 3", got)
	}
	// A later single submission of the replayed nonce still rejects: the
	// batch observed it durably.
	if _, err := a.SubmitReport(p.ID, SignReport(p, subject.ID, true, dup)); !errors.Is(err, ErrReplayedReport) {
		t.Fatalf("replay after batch: %v", err)
	}
}

// TestSubmitReportBatchUnknownReporter rejects every wire of a batch from a
// reporter the agent holds no key for, without touching the store.
func TestSubmitReportBatchUnknownReporter(t *testing.T) {
	a := New(ident(t), 0)
	p, subject := ident(t), ident(t)
	wires := [][]byte{
		SignReport(p, subject.ID, true, nonce(t)),
		SignReport(p, subject.ID, false, nonce(t)),
	}
	_, errs := a.SubmitReportBatch(p.ID, wires)
	for i, err := range errs {
		if !errors.Is(err, ErrUnknownReporter) {
			t.Fatalf("wire %d: got %v, want ErrUnknownReporter", i, err)
		}
	}
	if a.ReportCount() != 0 {
		t.Fatal("unknown-reporter batch reached the store")
	}
}
