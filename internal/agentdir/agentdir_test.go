package agentdir

import (
	"errors"
	"math"
	"sync"
	"testing"

	"hirep/internal/pkc"
	"hirep/internal/repstore"
)

func ident(t *testing.T) *pkc.Identity {
	t.Helper()
	id, err := pkc.NewIdentity(nil)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func nonce(t *testing.T) pkc.Nonce {
	t.Helper()
	n, err := pkc.NewNonce(nil)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRegisterKeyBinding(t *testing.T) {
	a := New(ident(t), 0)
	p := ident(t)
	if err := a.RegisterKey(p.ID, p.Sign.Public); err != nil {
		t.Fatal(err)
	}
	if !a.KnowsKey(p.ID) {
		t.Fatal("key not registered")
	}
	// Spoofer presents its own key under p's nodeID.
	spoofer := ident(t)
	if err := a.RegisterKey(p.ID, spoofer.Sign.Public); !errors.Is(err, ErrBadBinding) {
		t.Fatalf("spoofed binding accepted: %v", err)
	}
	if a.KeyCount() != 1 {
		t.Fatalf("key count %d", a.KeyCount())
	}
}

func TestSubmitReportHappyPath(t *testing.T) {
	a := New(ident(t), 0)
	p, subject := ident(t), ident(t)
	if err := a.RegisterKey(p.ID, p.Sign.Public); err != nil {
		t.Fatal(err)
	}
	wire := SignReport(p, subject.ID, true, nonce(t))
	rep, err := a.SubmitReport(p.ID, wire)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Subject != subject.ID || !rep.Positive || rep.Reporter != p.ID {
		t.Fatalf("report fields: %+v", rep)
	}
	if a.ReportCount() != 1 || a.SubjectCount() != 1 {
		t.Fatal("counts wrong")
	}
}

func TestSubmitReportUnknownReporter(t *testing.T) {
	a := New(ident(t), 0)
	p, subject := ident(t), ident(t)
	wire := SignReport(p, subject.ID, true, nonce(t))
	if _, err := a.SubmitReport(p.ID, wire); !errors.Is(err, ErrUnknownReporter) {
		t.Fatalf("unregistered reporter accepted: %v", err)
	}
}

func TestSubmitReportForgedSignature(t *testing.T) {
	a := New(ident(t), 0)
	p, forger, subject := ident(t), ident(t), ident(t)
	_ = a.RegisterKey(p.ID, p.Sign.Public)
	// Forger signs with its own key but claims p's identity.
	wire := SignReport(forger, subject.ID, false, nonce(t))
	if _, err := a.SubmitReport(p.ID, wire); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("forged report accepted: %v (identity spoofing, §4.2.2)", err)
	}
}

func TestSubmitReportTampered(t *testing.T) {
	a := New(ident(t), 0)
	p, subject := ident(t), ident(t)
	_ = a.RegisterKey(p.ID, p.Sign.Public)
	wire := SignReport(p, subject.ID, false, nonce(t))
	// Flip the outcome bit: negative -> positive.
	wire[pkc.NodeIDSize] = 1
	if _, err := a.SubmitReport(p.ID, wire); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered outcome accepted: %v", err)
	}
}

func TestSubmitReportReplay(t *testing.T) {
	a := New(ident(t), 0)
	p, subject := ident(t), ident(t)
	_ = a.RegisterKey(p.ID, p.Sign.Public)
	wire := SignReport(p, subject.ID, true, nonce(t))
	if _, err := a.SubmitReport(p.ID, wire); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SubmitReport(p.ID, wire); !errors.Is(err, ErrReplayedReport) {
		t.Fatalf("replay accepted: %v", err)
	}
	if a.ReportCount() != 1 {
		t.Fatal("replay inflated report count")
	}
}

func TestSubmitReportMalformed(t *testing.T) {
	a := New(ident(t), 0)
	p := ident(t)
	_ = a.RegisterKey(p.ID, p.Sign.Public)
	for _, wire := range [][]byte{nil, {}, make([]byte, 10), make([]byte, 200)} {
		if _, err := a.SubmitReport(p.ID, wire); !errors.Is(err, ErrBadReport) {
			t.Fatalf("malformed %d-byte report: %v", len(wire), err)
		}
	}
	// Outcome byte other than 0/1.
	good := SignReport(p, ident(t).ID, true, nonce(t))
	good[pkc.NodeIDSize] = 7
	if _, err := a.SubmitReport(p.ID, good); !errors.Is(err, ErrBadReport) {
		t.Fatalf("bad outcome byte: %v", err)
	}
}

func TestTrustValueSmoothing(t *testing.T) {
	a := New(ident(t), 0)
	p, subject := ident(t), ident(t)
	_ = a.RegisterKey(p.ID, p.Sign.Public)
	if _, ok := a.TrustValue(subject.ID); ok {
		t.Fatal("agent has an opinion with no reports")
	}
	// 3 positive, 1 negative: (3+1)/(4+2) = 2/3.
	for _, pos := range []bool{true, true, true, false} {
		wire := SignReport(p, subject.ID, pos, nonce(t))
		if _, err := a.SubmitReport(p.ID, wire); err != nil {
			t.Fatal(err)
		}
	}
	v, ok := a.TrustValue(subject.ID)
	if !ok {
		t.Fatal("no value")
	}
	if math.Abs(float64(v)-2.0/3.0) > 1e-12 {
		t.Fatalf("trust %v want 2/3", v)
	}
}

func TestTrustValueConvergesToBehaviour(t *testing.T) {
	a := New(ident(t), 0)
	p, good, bad := ident(t), ident(t), ident(t)
	_ = a.RegisterKey(p.ID, p.Sign.Public)
	for i := 0; i < 50; i++ {
		if _, err := a.SubmitReport(p.ID, SignReport(p, good.ID, true, nonce(t))); err != nil {
			t.Fatal(err)
		}
		if _, err := a.SubmitReport(p.ID, SignReport(p, bad.ID, false, nonce(t))); err != nil {
			t.Fatal(err)
		}
	}
	gv, _ := a.TrustValue(good.ID)
	bv, _ := a.TrustValue(bad.ID)
	if gv < 0.9 || bv > 0.1 {
		t.Fatalf("trust did not converge: good=%v bad=%v", gv, bv)
	}
}

func TestConcurrentSubmissions(t *testing.T) {
	a := New(ident(t), 0)
	subject := ident(t)
	const workers = 8
	reporters := make([]*pkc.Identity, workers)
	for i := range reporters {
		reporters[i] = ident(t)
		if err := a.RegisterKey(reporters[i].ID, reporters[i].Sign.Public); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(p *pkc.Identity) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				n, _ := pkc.NewNonce(nil)
				if _, err := a.SubmitReport(p.ID, SignReport(p, subject.ID, true, n)); err != nil {
					t.Error(err)
					return
				}
			}
		}(reporters[i])
	}
	wg.Wait()
	if a.ReportCount() != workers*50 {
		t.Fatalf("report count %d, want %d", a.ReportCount(), workers*50)
	}
}

func TestDecodeNonceHint(t *testing.T) {
	p := ident(t)
	n := nonce(t)
	wire := SignReport(p, ident(t).ID, true, n)
	got, err := DecodeNonceHint(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatal("nonce hint mismatch")
	}
	if _, err := DecodeNonceHint([]byte("short")); err == nil {
		t.Fatal("short wire decoded")
	}
}

func TestStringSummary(t *testing.T) {
	a := New(ident(t), 0)
	if a.String() == "" {
		t.Fatal("empty summary")
	}
}

// TestSubmitReportStoreFailureReleasesNonce pins that a report the store
// rejects does not burn its replay nonce: once the store works again, a
// retry of the same signed report is accepted — and only then does the wire
// become a true replay.
func TestSubmitReportStoreFailureReleasesNonce(t *testing.T) {
	st, err := repstore.Open("", repstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := NewWithStore(ident(t), 0, st)
	p, subject := ident(t), ident(t)
	if err := a.RegisterKey(p.ID, p.Sign.Public); err != nil {
		t.Fatal(err)
	}
	wire := SignReport(p, subject.ID, true, nonce(t))
	// Simulate a sticky store failure: a closed store refuses appends the
	// same way a poisoned WAL does.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SubmitReport(p.ID, wire); !errors.Is(err, repstore.ErrClosed) {
		t.Fatalf("append against failed store: %v", err)
	}
	// The store recovers (in production: a restart reopening the same dir;
	// here: swap in a fresh backend). The SAME wire must now be accepted.
	if a.store, err = repstore.Open("", repstore.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SubmitReport(p.ID, wire); err != nil {
		t.Fatalf("legitimate retry rejected after store failure: %v", err)
	}
	if _, err := a.SubmitReport(p.ID, wire); !errors.Is(err, ErrReplayedReport) {
		t.Fatalf("true replay accepted: %v", err)
	}
	if a.ReportCount() != 1 {
		t.Fatalf("report count %d, want 1", a.ReportCount())
	}
}

// TestApplyKeyUpdateStoreFailureKeepsKeys pins the all-or-nothing contract
// of key rotation: if the durable tally merge fails, the public-key list
// must be left untouched so the caller can tell nothing applied and retry.
func TestApplyKeyUpdateStoreFailureKeepsKeys(t *testing.T) {
	st, err := repstore.Open("", repstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := NewWithStore(ident(t), 0, st)
	old := ident(t)
	if err := a.RegisterKey(old.ID, old.Sign.Public); err != nil {
		t.Fatal(err)
	}
	_, wire, err := old.Rotate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ApplyKeyUpdate(wire); !errors.Is(err, repstore.ErrClosed) {
		t.Fatalf("key update with failed store: %v", err)
	}
	if !a.KnowsKey(old.ID) || a.KeyCount() != 1 {
		t.Fatal("key map mutated although the update failed")
	}
	// Once the store recovers, the same update applies end to end.
	if a.store, err = repstore.Open("", repstore.Options{}); err != nil {
		t.Fatal(err)
	}
	upd, err := a.ApplyKeyUpdate(wire)
	if err != nil {
		t.Fatalf("retry after store recovery failed: %v", err)
	}
	if a.KnowsKey(old.ID) || !a.KnowsKey(upd.NewID) {
		t.Fatal("retry did not rotate the key")
	}
}

// TestReplayCapOverflowKeepsRecentNonces audits the replay-nonce cache at
// replayCap overflow: a nonce that was recently REJECTED as a replay must
// keep being rejected even after enough fresh reports arrive to overflow the
// cache — eviction follows observation recency, not first-insertion order.
func TestReplayCapOverflowKeepsRecentNonces(t *testing.T) {
	const cap = 8
	a := New(ident(t), cap)
	rep := ident(t)
	if err := a.RegisterKey(rep.ID, rep.Sign.Public); err != nil {
		t.Fatal(err)
	}
	subject := ident(t)

	// Fill the cache to capacity.
	wires := make([][]byte, cap)
	for i := range wires {
		wires[i] = SignReport(rep, subject.ID, true, nonce(t))
		if _, err := a.SubmitReport(rep.ID, wires[i]); err != nil {
			t.Fatal(err)
		}
	}
	// An attacker replays the oldest report; it must be rejected, and the
	// rejection refreshes its recency.
	if _, err := a.SubmitReport(rep.ID, wires[0]); !errors.Is(err, ErrReplayedReport) {
		t.Fatalf("replay accepted: %v", err)
	}
	// Fresh reports overflow the cache (evicting cap-1 others), after which
	// the just-replayed wire must STILL be rejected.
	for i := 0; i < cap-1; i++ {
		if _, err := a.SubmitReport(rep.ID, SignReport(rep, subject.ID, true, nonce(t))); err != nil {
			t.Fatal(err)
		}
	}
	before := a.ReportCount()
	if _, err := a.SubmitReport(rep.ID, wires[0]); !errors.Is(err, ErrReplayedReport) {
		t.Fatalf("recently-replayed report re-accepted after overflow: %v", err)
	}
	if a.ReportCount() != before {
		t.Fatal("replayed report was double-counted")
	}
	// The truly least-recently-observed nonce (wires[1]) is the legitimate
	// eviction victim — the bounded cache forgets it.
	if _, err := a.SubmitReport(rep.ID, wires[1]); err != nil {
		t.Fatalf("evicted nonce should be forgotten (bounded-cache semantics): %v", err)
	}
}

// TestReporterStats checks the per-reporter polarity tallies behind slander
// detection (DESIGN.md §15): both the single and batch ingest paths count
// negatives, only accepted reports count, and the Reporters iterator
// snapshots without holding the tally lock (fn may re-enter the agent).
func TestReporterStats(t *testing.T) {
	a := New(ident(t), 0)
	slanderer, honest, subject := ident(t), ident(t), ident(t)
	for _, r := range []*pkc.Identity{slanderer, honest} {
		if err := a.RegisterKey(r.ID, r.Sign.Public); err != nil {
			t.Fatal(err)
		}
	}
	// Single path: 3 negatives and 1 positive from the slanderer.
	for i := 0; i < 4; i++ {
		if _, err := a.SubmitReport(slanderer.ID, SignReport(slanderer, subject.ID, i == 0, nonce(t))); err != nil {
			t.Fatal(err)
		}
	}
	// Batch path: 1 positive, 1 negative, and 1 replay (must NOT count) from
	// the honest reporter.
	dup := SignReport(honest, subject.ID, false, nonce(t))
	wires := [][]byte{SignReport(honest, subject.ID, true, nonce(t)), dup, dup}
	if _, errs := a.SubmitReportBatch(honest.ID, wires); errs[2] == nil {
		t.Fatal("replayed batch entry accepted")
	}

	got := map[pkc.NodeID]ReporterStat{}
	a.Reporters(func(s ReporterStat) bool {
		if a.ReportsBy(s.Reporter) != s.Reports { // re-entrancy: no deadlock
			t.Fatalf("iterator and ReportsBy disagree for %s", s.Reporter)
		}
		got[s.Reporter] = s
		return true
	})
	if s := got[slanderer.ID]; s.Reports != 4 || s.Negative != 3 {
		t.Fatalf("slanderer stats %+v, want 4 reports / 3 negative", s)
	}
	if s := got[honest.ID]; s.Reports != 2 || s.Negative != 1 {
		t.Fatalf("honest stats %+v, want 2 reports / 1 negative", s)
	}

	// Early-exit contract: returning false stops iteration.
	calls := 0
	a.Reporters(func(ReporterStat) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("iterator ignored false return (%d calls)", calls)
	}
}
