package agentdir

import (
	"errors"
	"testing"

	"hirep/internal/pkc"
)

func TestApplyKeyUpdateRemapsState(t *testing.T) {
	a := New(ident(t), 0)
	peer, subject := ident(t), ident(t)
	if err := a.RegisterKey(peer.ID, peer.Sign.Public); err != nil {
		t.Fatal(err)
	}
	// Accumulate reports under the old identity.
	for i := 0; i < 3; i++ {
		if _, err := a.SubmitReport(peer.ID, SignReport(peer, subject.ID, true, nonce(t))); err != nil {
			t.Fatal(err)
		}
	}
	// Also accumulate reports ABOUT the peer (it is a subject elsewhere).
	other := ident(t)
	_ = a.RegisterKey(other.ID, other.Sign.Public)
	if _, err := a.SubmitReport(other.ID, SignReport(other, peer.ID, false, nonce(t))); err != nil {
		t.Fatal(err)
	}
	before, _ := a.TrustValue(peer.ID)

	next, wire, err := peer.Rotate(nil)
	if err != nil {
		t.Fatal(err)
	}
	upd, err := a.ApplyKeyUpdate(wire)
	if err != nil {
		t.Fatal(err)
	}
	if upd.NewID != next.ID {
		t.Fatal("wrong successor")
	}
	// Old key gone, new key present.
	if a.KnowsKey(peer.ID) {
		t.Fatal("old nodeID still registered")
	}
	if !a.KnowsKey(next.ID) {
		t.Fatal("new nodeID not registered")
	}
	// Tallies about the peer moved to the new ID.
	if _, ok := a.TrustValue(peer.ID); ok {
		t.Fatal("old nodeID still has a trust value")
	}
	after, ok := a.TrustValue(next.ID)
	if !ok || after != before {
		t.Fatalf("trust value not carried over: %v -> %v (ok=%v)", before, after, ok)
	}
	// The successor can file reports immediately.
	if _, err := a.SubmitReport(next.ID, SignReport(next, subject.ID, true, nonce(t))); err != nil {
		t.Fatalf("successor report rejected: %v", err)
	}
}

func TestApplyKeyUpdateUnknownPredecessor(t *testing.T) {
	a := New(ident(t), 0)
	peer := ident(t)
	_, wire, _ := peer.Rotate(nil)
	if _, err := a.ApplyKeyUpdate(wire); !errors.Is(err, ErrUnknownReporter) {
		t.Fatalf("update from unknown peer: %v", err)
	}
}

func TestApplyKeyUpdateForgedRejected(t *testing.T) {
	a := New(ident(t), 0)
	victim, attacker := ident(t), ident(t)
	_ = a.RegisterKey(victim.ID, victim.Sign.Public)
	// The attacker rotates its own identity but cannot claim the victim's:
	// a forged wire with the victim's ID spliced into the prefix fails the
	// signature check against the victim's registered SP.
	_, wire, _ := attacker.Rotate(nil)
	forged := append([]byte(nil), wire...)
	copy(forged[19:], victim.ID[:]) // splice the victim's ID after the magic
	if _, err := a.ApplyKeyUpdate(forged); !errors.Is(err, pkc.ErrBadUpdate) {
		t.Fatalf("forged succession accepted: %v", err)
	}
	if !a.KnowsKey(victim.ID) {
		t.Fatal("victim's key was displaced")
	}
}

func TestApplyKeyUpdateGarbage(t *testing.T) {
	a := New(ident(t), 0)
	if _, err := a.ApplyKeyUpdate([]byte("nope")); !errors.Is(err, pkc.ErrBadUpdate) {
		t.Fatalf("garbage update: %v", err)
	}
}
