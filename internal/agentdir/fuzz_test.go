package agentdir

import (
	"testing"

	"hirep/internal/pkc"
)

var fuzzAgent, fuzzReporter = func() (*Agent, *pkc.Identity) {
	self, err := pkc.NewIdentity(nil)
	if err != nil {
		panic(err)
	}
	rep, err := pkc.NewIdentity(nil)
	if err != nil {
		panic(err)
	}
	a := New(self, 1<<16)
	if err := a.RegisterKey(rep.ID, rep.Sign.Public); err != nil {
		panic(err)
	}
	return a, rep
}()

// FuzzSubmitReport feeds arbitrary report wires to the agent: only
// well-signed reports from the registered reporter may be accepted, and
// nothing may panic.
func FuzzSubmitReport(f *testing.F) {
	subject, _ := pkc.NewIdentity(nil)
	nonce, _ := pkc.NewNonce(nil)
	f.Add(SignReport(fuzzReporter, subject.ID, true, nonce))
	f.Add([]byte{})
	f.Add(make([]byte, 117))
	f.Fuzz(func(t *testing.T, wire []byte) {
		before := fuzzAgent.ReportCount()
		rep, err := fuzzAgent.SubmitReport(fuzzReporter.ID, wire)
		if err != nil {
			if fuzzAgent.ReportCount() != before {
				t.Fatal("rejected report changed state")
			}
			return
		}
		// Accepted implies a signature the reporter actually made over these
		// exact fields — verify independently.
		body := wire[:pkc.NodeIDSize+1+pkc.NonceSize]
		sig := wire[pkc.NodeIDSize+1+pkc.NonceSize:]
		if !pkc.Verify(fuzzReporter.Sign.Public, body, sig) {
			t.Fatalf("accepted report with bad signature: %+v", rep)
		}
	})
}

// FuzzApplyKeyUpdate feeds arbitrary key-update wires: forged successions
// must never displace a registered key.
func FuzzApplyKeyUpdate(f *testing.F) {
	_, legit, _ := func() (*pkc.Identity, []byte, error) {
		n, w, err := fuzzReporter.Rotate(nil)
		return n, w, err
	}()
	f.Add(legit)
	f.Add([]byte{})
	f.Add(make([]byte, 150))
	f.Fuzz(func(t *testing.T, wire []byte) {
		_, _ = fuzzAgent.ApplyKeyUpdate(wire)
	})
}
