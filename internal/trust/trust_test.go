package trust

import (
	"math"
	"testing"
	"testing/quick"

	"hirep/internal/xrand"
)

func TestValueValid(t *testing.T) {
	for _, v := range []Value{0, 0.5, 1} {
		if !v.Valid() {
			t.Errorf("%v should be valid", v)
		}
	}
	for _, v := range []Value{-0.01, 1.01, Value(math.NaN())} {
		if v.Valid() {
			t.Errorf("%v should be invalid", v)
		}
	}
}

func TestConsistent(t *testing.T) {
	cases := []struct {
		v    Value
		good bool
		want bool
	}{
		{0.9, true, true},
		{0.9, false, false},
		{0.1, false, true},
		{0.1, true, false},
		{0.5, true, false}, // exactly 0.5 does not endorse
		{0.5, false, true},
	}
	for _, c := range cases {
		if got := c.v.Consistent(c.good); got != c.want {
			t.Errorf("Consistent(%v, %v)=%v want %v", c.v, c.good, got, c.want)
		}
	}
}

func TestRatingModelRanges(t *testing.T) {
	m := DefaultRatingModel()
	rng := xrand.New(1)
	for i := 0; i < 2000; i++ {
		// Good agent, trustworthy subject: [0.6, 1).
		v := m.Evaluate(true, true, rng)
		if v < 0.6 || v >= 1.0 {
			t.Fatalf("good/trustworthy rating %v out of [0.6,1)", v)
		}
		// Good agent, untrustworthy subject: [0, 0.4).
		v = m.Evaluate(true, false, rng)
		if v < 0 || v >= 0.4 {
			t.Fatalf("good/untrustworthy rating %v out of [0,0.4)", v)
		}
		// Bad agent inverts.
		v = m.Evaluate(false, true, rng)
		if v < 0 || v >= 0.4 {
			t.Fatalf("bad/trustworthy rating %v out of [0,0.4)", v)
		}
		v = m.Evaluate(false, false, rng)
		if v < 0.6 || v >= 1.0 {
			t.Fatalf("bad/untrustworthy rating %v out of [0.6,1)", v)
		}
	}
}

func TestRatingModelValidate(t *testing.T) {
	if err := DefaultRatingModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []RatingModel{
		{GoodLo: 0.8, GoodHi: 0.6, BadLo: 0, BadHi: 0.4},
		{GoodLo: -0.1, GoodHi: 1, BadLo: 0, BadHi: 0.4},
		{GoodLo: 0.6, GoodHi: 1.2, BadLo: 0, BadHi: 0.4},
		{GoodLo: 0.6, GoodHi: 1, BadLo: 0.4, BadHi: 0.4},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
}

func TestExpertiseAlphaValidation(t *testing.T) {
	for _, a := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NewExpertise(a); err == nil {
			t.Errorf("alpha %v accepted", a)
		}
	}
	if _, err := NewExpertise(0.3); err != nil {
		t.Fatal(err)
	}
}

func TestExpertiseStartsAtOne(t *testing.T) {
	e, _ := NewExpertise(0.3)
	if e.Value() != 1 {
		t.Fatalf("initial expertise %v, want 1 (§3.4.3)", e.Value())
	}
}

func TestExpertiseEWMA(t *testing.T) {
	e, _ := NewExpertise(0.5)
	e.Update(false) // 0.5*0 + 0.5*1 = 0.5
	if math.Abs(e.Value()-0.5) > 1e-12 {
		t.Fatalf("after one miss: %v want 0.5", e.Value())
	}
	e.Update(true) // 0.5*1 + 0.5*0.5 = 0.75
	if math.Abs(e.Value()-0.75) > 1e-12 {
		t.Fatalf("after hit: %v want 0.75", e.Value())
	}
}

func TestExpertiseConvergesToAccuracy(t *testing.T) {
	// An agent that is always right converges to 1; always wrong to 0.
	right, _ := NewExpertise(0.3)
	wrong, _ := NewExpertise(0.3)
	for i := 0; i < 100; i++ {
		right.Update(true)
		wrong.Update(false)
	}
	if right.Value() < 0.999 {
		t.Errorf("always-right expertise %v", right.Value())
	}
	if wrong.Value() > 0.001 {
		t.Errorf("always-wrong expertise %v", wrong.Value())
	}
}

func TestExpertiseBoundedProperty(t *testing.T) {
	f := func(updates []bool) bool {
		e, _ := NewExpertise(0.3)
		for _, u := range updates {
			e.Update(u)
		}
		return e.Value() >= 0 && e.Value() <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAggregateWeightedMean(t *testing.T) {
	var a Aggregate
	a.Add(1.0, 3)
	a.Add(0.0, 1)
	v, ok := a.Value()
	if !ok {
		t.Fatal("no value")
	}
	if math.Abs(float64(v)-0.75) > 1e-12 {
		t.Fatalf("weighted mean %v want 0.75", v)
	}
	if a.N() != 2 {
		t.Fatalf("N=%d", a.N())
	}
}

func TestAggregateIgnoresNonPositiveWeights(t *testing.T) {
	var a Aggregate
	a.Add(1.0, 0)
	a.Add(1.0, -2)
	if _, ok := a.Value(); ok {
		t.Fatal("zero-weight aggregate produced a value")
	}
	a.Add(0.4, 1)
	v, ok := a.Value()
	if !ok || math.Abs(float64(v)-0.4) > 1e-12 {
		t.Fatalf("got %v %v", v, ok)
	}
}

func TestAggregateEmptyNoValue(t *testing.T) {
	var a Aggregate
	if _, ok := a.Value(); ok {
		t.Fatal("empty aggregate produced a value")
	}
}

func TestAggregateBoundedProperty(t *testing.T) {
	rng := xrand.New(99)
	for trial := 0; trial < 200; trial++ {
		var a Aggregate
		n := rng.IntRange(1, 20)
		for i := 0; i < n; i++ {
			a.Add(Value(rng.Float64()), rng.Float64())
		}
		if v, ok := a.Value(); ok && (v < 0 || v > 1) {
			t.Fatalf("aggregate %v out of [0,1]", v)
		}
	}
}

func TestMSEAccumulator(t *testing.T) {
	var m MSEAccumulator
	if m.MSE() != 0 {
		t.Fatal("empty MSE nonzero")
	}
	m.Observe(1, 1)
	m.Observe(0, 1) // error 1
	if math.Abs(m.MSE()-0.5) > 1e-12 {
		t.Fatalf("MSE %v want 0.5", m.MSE())
	}
	if m.N() != 2 {
		t.Fatalf("N=%d", m.N())
	}
}

func TestMSEPerfectEstimatesZero(t *testing.T) {
	var m MSEAccumulator
	rng := xrand.New(5)
	for i := 0; i < 100; i++ {
		v := Value(rng.Float64())
		m.Observe(v, v)
	}
	if m.MSE() != 0 {
		t.Fatalf("perfect estimates gave MSE %v", m.MSE())
	}
}

func TestOracleAssignment(t *testing.T) {
	o := NewOracle(10000, 0.7, xrand.New(3))
	frac := float64(o.CountTrustworthy()) / float64(o.N())
	if frac < 0.67 || frac > 0.73 {
		t.Fatalf("trustworthy fraction %.3f, want ~0.7", frac)
	}
	for i := 0; i < o.N(); i++ {
		want := Value(0)
		if o.Trustworthy(i) {
			want = 1
		}
		if o.TrueValue(i) != want {
			t.Fatalf("TrueValue(%d) inconsistent with Trustworthy", i)
		}
		if o.TransactionOutcome(i) != o.Trustworthy(i) {
			t.Fatalf("outcome inconsistent for %d", i)
		}
	}
}

func TestOracleDeterministic(t *testing.T) {
	a := NewOracle(500, 0.5, xrand.New(77))
	b := NewOracle(500, 0.5, xrand.New(77))
	for i := 0; i < 500; i++ {
		if a.Trustworthy(i) != b.Trustworthy(i) {
			t.Fatal("oracle not deterministic")
		}
	}
}

func TestGoodAgentEvaluationIsConsistent(t *testing.T) {
	// A good agent's evaluation must always be consistent with the outcome —
	// the property that drives expertise learning in Figure 6.
	m := DefaultRatingModel()
	rng := xrand.New(8)
	for i := 0; i < 1000; i++ {
		subject := rng.Bool(0.5)
		good := m.Evaluate(true, subject, rng)
		if !good.Consistent(subject) {
			t.Fatalf("good agent inconsistent: rating %v for subject=%v", good, subject)
		}
		bad := m.Evaluate(false, subject, rng)
		if bad.Consistent(subject) {
			t.Fatalf("bad agent accidentally consistent: rating %v for subject=%v", bad, subject)
		}
	}
}
