// Package trust implements hiREP's trust-value substrate: ground-truth
// assignment, agent evaluation models, expertise tracking, and aggregation.
//
// Following §5.2 of the paper: every node is randomly assigned trusted (true
// trust value 1) or untrusted (0). Reputation agents are good or bad
// evaluators — a good agent rates trustable peers in U(0.6, 1) and
// untrustable peers in U(0, 0.4); a poor agent is inverted. Peers track each
// trusted agent's expertise with the EWMA of §3.4.3:
//
//	accuracy = α·A_c + (1−α)·A_p,  A_c ∈ {0,1}
//
// where A_c is 1 only when the agent's evaluation was consistent with the
// observed transaction result.
package trust

import (
	"fmt"
	"math"

	"hirep/internal/xrand"
)

// Value is a trust value in [0, 1].
type Value float64

// Valid reports whether v lies in [0,1].
func (v Value) Valid() bool { return v >= 0 && v <= 1 && !math.IsNaN(float64(v)) }

// Consistent reports whether an estimated trust value agrees with the
// observed binary transaction outcome (§3.4.3: "the evaluation given by this
// agent node is consistent with the transaction result"). An estimate above
// 0.5 predicts a good transaction.
func (v Value) Consistent(goodOutcome bool) bool {
	return (v > 0.5) == goodOutcome
}

// RatingModel is the evaluation behaviour of §5.2. Good evaluators rate
// trustworthy subjects in [GoodLo, GoodHi) and untrustworthy ones in
// [BadLo, BadHi); poor evaluators invert the two ranges.
type RatingModel struct {
	GoodLo, GoodHi float64 // rating range for subjects the evaluator endorses
	BadLo, BadHi   float64 // rating range for subjects the evaluator condemns
}

// DefaultRatingModel is Table 1's rating configuration.
func DefaultRatingModel() RatingModel {
	return RatingModel{GoodLo: 0.6, GoodHi: 1.0, BadLo: 0.0, BadHi: 0.4}
}

// Validate checks the model's ranges.
func (m RatingModel) Validate() error {
	for _, p := range []struct {
		lo, hi float64
		name   string
	}{{m.GoodLo, m.GoodHi, "good"}, {m.BadLo, m.BadHi, "bad"}} {
		if p.lo < 0 || p.hi > 1 || p.hi <= p.lo {
			return fmt.Errorf("trust: invalid %s rating range [%v,%v)", p.name, p.lo, p.hi)
		}
	}
	return nil
}

// Evaluate produces an evaluator's trust rating of a subject.
// honestEvaluator selects the good-agent behaviour; subjectTrustworthy is the
// subject's ground truth.
func (m RatingModel) Evaluate(honestEvaluator, subjectTrustworthy bool, rng *xrand.RNG) Value {
	endorse := subjectTrustworthy == honestEvaluator
	if endorse {
		return Value(rng.Range(m.GoodLo, m.GoodHi))
	}
	return Value(rng.Range(m.BadLo, m.BadHi))
}

// Expertise tracks one trusted agent's evaluation accuracy via EWMA.
type Expertise struct {
	alpha float64
	value float64
}

// NewExpertise returns a tracker with smoothing factor alpha in (0,1) and the
// paper's initial expertise of 1 (§3.4.3: "a peer will assign an initial
// expertise value of 1 to each agent").
func NewExpertise(alpha float64) (*Expertise, error) {
	if alpha <= 0 || alpha >= 1 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("trust: alpha must be in (0,1), got %v", alpha)
	}
	return &Expertise{alpha: alpha, value: 1}, nil
}

// Update folds one transaction's accuracy (1 if the agent's evaluation was
// consistent with the outcome, else 0) into the EWMA.
func (e *Expertise) Update(consistent bool) {
	ac := 0.0
	if consistent {
		ac = 1.0
	}
	e.value = e.alpha*ac + (1-e.alpha)*e.value
}

// Value returns the current expertise in [0,1].
func (e *Expertise) Value() float64 { return e.value }

// Aggregate combines agent evaluations into a final estimated trust value.
type Aggregate struct {
	sumW  float64
	sumWV float64
	n     int
}

// Add includes one evaluation with the given weight (expertise). Non-positive
// weights contribute nothing.
func (a *Aggregate) Add(v Value, weight float64) {
	a.n++
	if weight <= 0 {
		return
	}
	a.sumW += weight
	a.sumWV += weight * float64(v)
}

// N returns how many evaluations were offered (including zero-weight ones).
func (a *Aggregate) N() int { return a.n }

// Value returns the weighted mean, and false when no positive-weight
// evaluation was added.
func (a *Aggregate) Value() (Value, bool) {
	if a.sumW <= 0 {
		return 0, false
	}
	return Value(a.sumWV / a.sumW), true
}

// MSEAccumulator accumulates the mean square error between estimated and true
// trust values, the paper's accuracy metric (§5.1).
type MSEAccumulator struct {
	sumSq float64
	n     int
}

// Observe records one (estimate, truth) pair.
func (m *MSEAccumulator) Observe(estimate Value, truth Value) {
	d := float64(estimate) - float64(truth)
	m.sumSq += d * d
	m.n++
}

// MSE returns the mean square error so far (0 when empty).
func (m *MSEAccumulator) MSE() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sumSq / float64(m.n)
}

// N returns the number of observations.
func (m *MSEAccumulator) N() int { return m.n }

// Oracle holds the simulation's ground truth: which nodes are trustworthy.
type Oracle struct {
	trustworthy []bool
}

// NewOracle assigns each of n nodes trustworthy with probability pTrustworthy.
func NewOracle(n int, pTrustworthy float64, rng *xrand.RNG) *Oracle {
	o := &Oracle{trustworthy: make([]bool, n)}
	for i := range o.trustworthy {
		o.trustworthy[i] = rng.Bool(pTrustworthy)
	}
	return o
}

// Trustworthy reports node i's ground truth.
func (o *Oracle) Trustworthy(i int) bool { return o.trustworthy[i] }

// TrueValue returns node i's true trust value: 1 for trustworthy, 0 otherwise.
func (o *Oracle) TrueValue(i int) Value {
	if o.trustworthy[i] {
		return 1
	}
	return 0
}

// N returns the population size.
func (o *Oracle) N() int { return len(o.trustworthy) }

// CountTrustworthy returns how many nodes are trustworthy.
func (o *Oracle) CountTrustworthy() int {
	c := 0
	for _, b := range o.trustworthy {
		if b {
			c++
		}
	}
	return c
}

// TransactionOutcome samples whether a transaction with the given provider
// succeeds. Trustworthy providers deliver authentic files; untrustworthy ones
// deliver polluted data. The simulator treats outcomes as deterministic in
// the provider's ground truth, matching the paper's binary trust assignment.
func (o *Oracle) TransactionOutcome(provider int) bool {
	return o.trustworthy[provider]
}
