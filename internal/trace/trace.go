// Package trace is a lightweight event-tracing facility for the discrete-
// event simulator: a fixed-capacity ring of message-delivery events with
// kind filtering, for debugging protocol behaviour ("show me the last 50
// hirep/trust-req deliveries around the failure").
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Event is one traced occurrence.
type Event struct {
	At     float64 // virtual delivery time (ms)
	Sent   float64 // virtual send time (ms)
	Queued float64 // receiver-queueing delay within At-Sent (ms)
	Kind   string  // message kind
	From   int
	To     int
}

// String renders the event compactly, including the in-flight time and the
// portion of it spent queueing at the receiver.
func (e Event) String() string {
	return fmt.Sprintf("%10.2fms %-24s %4d -> %-4d  (%.2fms in flight, %.2fms queued)",
		e.At, e.Kind, e.From, e.To, e.At-e.Sent, e.Queued)
}

// Ring is a bounded in-memory trace. The zero value is unusable; use New.
// Safe for concurrent use.
type Ring struct {
	mu     sync.Mutex
	events []Event
	next   int
	full   bool
	filter func(Event) bool
	seen   int
}

// New creates a ring holding the most recent capacity events (minimum 1).
func New(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{events: make([]Event, capacity)}
}

// SetFilter installs a predicate; events failing it are dropped. A nil
// filter records everything.
func (r *Ring) SetFilter(f func(Event) bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.filter = f
}

// KindPrefixFilter returns a filter keeping events whose kind starts with
// any of the given prefixes.
func KindPrefixFilter(prefixes ...string) func(Event) bool {
	return func(e Event) bool {
		for _, p := range prefixes {
			if strings.HasPrefix(e.Kind, p) {
				return true
			}
		}
		return false
	}
}

// Record adds an event (subject to the filter). It implements the
// simnet.Tracer interface: at is the delivery instant, sent the send instant,
// and queued the receiver-queueing delay, all in virtual ms.
func (r *Ring) Record(at, sent, queued float64, kind string, from, to int) {
	e := Event{At: at, Sent: sent, Queued: queued, Kind: kind, From: from, To: to}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filter != nil && !r.filter(e) {
		return
	}
	r.seen++
	r.events[r.next] = e
	r.next = (r.next + 1) % len(r.events)
	if r.next == 0 {
		r.full = true
	}
}

// Seen returns how many events passed the filter since creation (including
// ones the ring has since overwritten).
func (r *Ring) Seen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.events[:r.next]...)
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	return append(out, r.events[:r.next]...)
}

// Dump writes the retained events to w, oldest first.
func (r *Ring) Dump(w io.Writer) {
	for _, e := range r.Events() {
		fmt.Fprintln(w, e)
	}
}
