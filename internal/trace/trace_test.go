package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"hirep/internal/simnet"
	"hirep/internal/topology"
	"hirep/internal/xrand"
)

func TestRingRetainsMostRecent(t *testing.T) {
	r := New(3)
	for i := 0; i < 7; i++ {
		r.Record(float64(i), 0, 0, "k", i, i+1)
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("%d retained", len(evs))
	}
	for i, e := range evs {
		if e.At != float64(4+i) {
			t.Fatalf("wrong retention order: %v", evs)
		}
	}
	if r.Seen() != 7 {
		t.Fatalf("seen %d", r.Seen())
	}
}

func TestRingPartialFill(t *testing.T) {
	r := New(10)
	r.Record(1, 0, 0, "a", 0, 1)
	r.Record(2, 0, 0, "b", 1, 2)
	evs := r.Events()
	if len(evs) != 2 || evs[0].Kind != "a" || evs[1].Kind != "b" {
		t.Fatalf("partial fill wrong: %v", evs)
	}
}

func TestRingFilter(t *testing.T) {
	r := New(10)
	r.SetFilter(KindPrefixFilter("hirep/"))
	r.Record(1, 0, 0, "hirep/trust-req", 0, 1)
	r.Record(2, 0, 0, "voting/trust-req", 1, 2)
	r.Record(3, 0, 0, "hirep/report", 2, 3)
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("filter kept %d", len(evs))
	}
	for _, e := range evs {
		if !strings.HasPrefix(e.Kind, "hirep/") {
			t.Fatalf("foreign kind retained: %v", e)
		}
	}
}

func TestRingMinCapacity(t *testing.T) {
	r := New(0)
	r.Record(1, 0, 0, "a", 0, 1)
	r.Record(2, 0, 0, "b", 0, 1)
	evs := r.Events()
	if len(evs) != 1 || evs[0].Kind != "b" {
		t.Fatalf("cap-1 ring: %v", evs)
	}
}

func TestRingConcurrent(t *testing.T) {
	r := New(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(float64(i), 0, 0, "k", g, i)
			}
		}(g)
	}
	wg.Wait()
	if r.Seen() != 800 {
		t.Fatalf("seen %d", r.Seen())
	}
	if len(r.Events()) != 128 {
		t.Fatalf("retained %d", len(r.Events()))
	}
}

func TestDumpFormat(t *testing.T) {
	r := New(4)
	r.Record(12.5, 0, 0, "hirep/trust-req", 3, 9)
	var buf bytes.Buffer
	r.Dump(&buf)
	out := buf.String()
	if !strings.Contains(out, "hirep/trust-req") || !strings.Contains(out, "3 ->") {
		t.Fatalf("dump format: %q", out)
	}
}

func TestTracerWiredIntoSimnet(t *testing.T) {
	g, err := topology.Generate(topology.GenSpec{Model: topology.PowerLaw, N: 20, AvgDegree: 4}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	net, err := simnet.New(g, simnet.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	r := New(16)
	net.SetTracer(r)
	net.Send(0, 1, "demo", nil)
	net.Send(1, 2, "demo", nil)
	net.Run(0)
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("traced %d deliveries", len(evs))
	}
	if evs[0].At <= 0 {
		t.Fatal("delivery time not recorded")
	}
	// Tracing is at delivery time: events are time-ordered.
	if evs[1].At < evs[0].At {
		t.Fatal("trace out of order")
	}
	// The delivery record decomposes: send instant plus in-flight time give
	// the delivery instant, and queueing delay is bounded by the total.
	for _, ev := range evs {
		if ev.At <= ev.Sent {
			t.Fatalf("delivery at %v not after send at %v", ev.At, ev.Sent)
		}
		if ev.Queued < 0 || ev.Queued > ev.At-ev.Sent {
			t.Fatalf("queueing delay %v outside [0, %v]", ev.Queued, ev.At-ev.Sent)
		}
	}
}

func BenchmarkRingRecord(b *testing.B) {
	r := New(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(float64(i), 0, 0, "hirep/trust-req", i&1023, (i+1)&1023)
	}
}
