package core

import (
	"math"

	"hirep/internal/simnet"
	"hirep/internal/topology"
	"hirep/internal/trust"
)

// This file implements the transaction loop of §3.5/§3.6: onion-routed trust
// value requests to the requestor's trusted agents, expertise-weighted
// aggregation, provider selection, expertise updates, list maintenance, and
// onion-routed transaction reports.

// TxResult summarizes one transaction for the experiment harness.
type TxResult struct {
	Requestor  topology.NodeID
	Candidates []topology.NodeID
	// Estimates holds the requestor's final estimated trust per candidate;
	// NaN when no agent offered an opinion.
	Estimates []trust.Value
	Chosen    topology.NodeID
	Outcome   bool
	// SqErr/SqN accumulate squared error between estimates and ground truth
	// over the candidates (the paper's MSE ingredient, §5.1). Candidates
	// without an estimate contribute the uninformed prior 0.5.
	SqErr float64
	SqN   int
	// ResponseTime is the span from sending the first trust request to
	// receiving the last trust response (§5.3's response-time definition).
	ResponseTime simnet.Time
	// TrustMessages counts trust-req/resp/report messages of this
	// transaction; MaintMessages counts refill traffic it triggered.
	TrustMessages int64
	MaintMessages int64
	// Responded is how many trusted agents answered.
	Responded int
}

// MSE returns the transaction's mean squared estimation error.
func (r TxResult) MSE() float64 {
	if r.SqN == 0 {
		return 0
	}
	return r.SqErr / float64(r.SqN)
}

// onTrustReq handles a trust-value request arriving at an agent (§3.5.2).
func (s *System) onTrustReq(nw *simnet.Network, m simnet.Message) {
	a := s.agents[m.To]
	if a == nil || a.down() {
		return // not an agent (stale list entry) or offline this transaction
	}
	p := m.Payload.(trustReqPayload)
	ests := make([]trust.Value, len(p.candidates))
	for i, c := range p.candidates {
		ests[i] = s.evaluate(a, c)
	}
	// Respond through the requestor's onion using a fresh envelope, the
	// "{SP_p(T), SP_e, Onion_e}" reply of §3.5.2.
	s.onionSend(m.To, kindTrustRespID, p.replyRoute, trustRespPayload{
		txID: p.txID, agent: m.To, estimates: ests,
	})
}

// evaluate produces an agent's trust estimate for subject. Honest agents use
// accumulated transaction reports when available (the richer "next level
// computation model" of §4.2.3), otherwise their rating model; poor agents
// always evaluate inversely.
func (s *System) evaluate(a *agentState, subject topology.NodeID) trust.Value {
	if a.honest && s.cfg.Model != ModelRating {
		if v, ok := s.reportEstimate(a, subject); ok {
			return v
		}
	}
	return s.cfg.Rating.Evaluate(a.honest, s.oracle.Trustworthy(int(subject)), a.rng)
}

// reportEstimate computes an honest agent's report-based trust estimate for
// subject, per the configured model. ok is false when the agent lacks enough
// evidence and must fall back to its rating behaviour.
func (s *System) reportEstimate(a *agentState, subject topology.NodeID) (trust.Value, bool) {
	t, has := a.tallies[subject]
	if !has || t.pos+t.neg < minReports {
		return 0, false
	}
	if s.cfg.Model == ModelTally {
		return t.estimate(), true
	}
	// ModelCredibility: weight each reporter's per-subject rate by the
	// reporter's feedback credibility — how often its verdicts agree with
	// the rest of the agent's evidence (PeerTrust-style, §4.2.3). A liar
	// systematically contradicts the honest majority across subjects, so its
	// credibility collapses and its reports stop moving the estimate.
	var sumW, sumWV float64
	for reporter, subjects := range a.perReporter {
		rt, ok := subjects[subject]
		if !ok || rt.pos+rt.neg == 0 {
			continue
		}
		cred := a.credibility(reporter)
		sumW += cred
		sumWV += cred * float64(rt.estimate())
	}
	if sumW <= 0 {
		return t.estimate(), true
	}
	return trust.Value(sumWV / sumW), true
}

// credibility is the Jeffreys-smoothed fraction of the reporter's subjects
// on which its verdict majority agrees with the majority of everyone else's
// reports (the reporter's own contribution excluded to avoid
// self-agreement).
func (a *agentState) credibility(reporter topology.NodeID) float64 {
	agree, total := 0, 0
	for subject, rt := range a.perReporter[reporter] {
		if rt.pos == rt.neg {
			continue // no verdict from this reporter
		}
		at := a.tallies[subject]
		rest := tally{pos: at.pos - rt.pos, neg: at.neg - rt.neg}
		if rest.pos == rest.neg {
			continue // no independent verdict to compare with
		}
		total++
		if (rt.pos > rt.neg) == (rest.pos > rest.neg) {
			agree++
		}
	}
	return (float64(agree) + 0.5) / (float64(total) + 1)
}

// onTrustResp collects an agent's response at the requestor.
func (s *System) onTrustResp(nw *simnet.Network, m simnet.Message) {
	p := m.Payload.(trustRespPayload)
	if s.curTx == nil || s.curTx.id != p.txID || m.To != s.curTx.requestor {
		return
	}
	if _, dup := s.curTx.responses[p.agent]; dup {
		return
	}
	s.curTx.responses[p.agent] = p.estimates
	s.curTx.lastResp = nw.Now()
}

// onReport stores a transaction report at an agent (§3.5.3).
func (s *System) onReport(m simnet.Message) {
	a := s.agents[m.To]
	if a == nil || a.down() {
		return
	}
	p := m.Payload.(reportPayload)
	a.record(p.reporter, p.subject, p.positive)
}

// record stores one report in the agent's tallies, attributed to reporter for
// the credibility-weighted model.
func (a *agentState) record(reporter, subject topology.NodeID, positive bool) {
	t := a.tallies[subject]
	if positive {
		t.pos++
	} else {
		t.neg++
	}
	a.tallies[subject] = t
	bySubject := a.perReporter[reporter]
	if bySubject == nil {
		bySubject = make(map[topology.NodeID]tally)
		a.perReporter[reporter] = bySubject
	}
	rt := bySubject[subject]
	if positive {
		rt.pos++
	} else {
		rt.neg++
	}
	bySubject[subject] = rt
}

// InjectReport stores one transaction report at agent directly, bypassing the
// simulated wire — the campaign driver's hook (internal/campaign) for
// coordinated attacker floods at 100k-node scale, where attacker traffic
// would otherwise dominate simulator time. It applies exactly onReport's
// logic. Returns false when agent is unknown or down, mirroring the silent
// drop a dead agent's wire would produce.
func (s *System) InjectReport(agent, reporter, subject topology.NodeID, positive bool) bool {
	a := s.agents[agent]
	if a == nil || a.down() {
		return false
	}
	a.record(reporter, subject, positive)
	return true
}

// ReportEstimateOf exposes agent's report-based trust estimate for subject as
// a read-only probe (ok=false when the agent is unknown, down, or lacks
// evidence) — the campaign scorer's window into what each honest agent would
// answer, without driving a transaction.
func (s *System) ReportEstimateOf(agent, subject topology.NodeID) (trust.Value, bool) {
	a := s.agents[agent]
	if a == nil || a.down() {
		return 0, false
	}
	return s.reportEstimate(a, subject)
}

// onProbe answers a backup-agent liveness probe.
func (s *System) onProbe(nw *simnet.Network, m simnet.Message) {
	a := s.agents[m.To]
	if a == nil || a.down() {
		return
	}
	p := m.Payload.(probePayload)
	nw.SendKindBytes(m.To, p.origin, kindProbeAckID, probeAckPayload{agent: m.To}, probeSize())
}

// onProbeAck records a live backup agent.
func (s *System) onProbeAck(m simnet.Message) {
	if s.curProbe == nil {
		return
	}
	p := m.Payload.(probeAckPayload)
	s.curProbe.acks[p.agent] = true
}

// RunTransaction executes one complete transaction for requestor over the
// given provider candidates and returns its result. The simulator is driven
// to quiescence, so results are final when this returns.
func (s *System) RunTransaction(requestor topology.NodeID, candidates []topology.NodeID) TxResult {
	p := s.peers[requestor]
	trustBefore := trafficMessages(s.net)
	maintBefore := maintMessages(s.net)

	// Refresh per-transaction agent churn.
	if s.cfg.OfflineProb > 0 {
		for _, a := range s.agents {
			if a != nil {
				a.offline = s.crng.Bool(s.cfg.OfflineProb)
			}
		}
	}

	s.nextID++
	tx := &txCollect{
		id:         s.nextID,
		requestor:  requestor,
		candidates: candidates,
		expect:     len(p.list.entries),
		responses:  make(map[topology.NodeID][]trust.Value),
		start:      s.net.Now(),
	}
	s.curTx = tx

	// §3.5.1: send the trust value request to every trusted agent through
	// the agent's onion; carry the requestor's own onion for the reply path.
	replyRoute := append(append([]topology.NodeID(nil), p.route...), requestor)
	for _, e := range p.list.entries {
		path := append(append([]topology.NodeID(nil), e.route...), e.agent)
		s.onionSend(requestor, kindTrustReqID, path, trustReqPayload{
			txID: tx.id, requestor: requestor, candidates: candidates, replyRoute: replyRoute,
		})
	}
	s.net.Run(0)

	// Aggregate: expertise-weighted mean per candidate (§3.6: "computes the
	// final estimated trust value of the potential file providers").
	res := TxResult{
		Requestor:  requestor,
		Candidates: candidates,
		Estimates:  make([]trust.Value, len(candidates)),
		Responded:  len(tx.responses),
	}
	aggs := make([]trust.Aggregate, len(candidates))
	for agent, ests := range tx.responses {
		e := p.list.find(agent)
		if e == nil {
			continue
		}
		w := e.expertise.Value()
		for i := range candidates {
			aggs[i].Add(ests[i], w)
		}
	}
	bestIdx, bestVal := -1, -1.0
	for i := range candidates {
		v, ok := aggs[i].Value()
		if !ok {
			res.Estimates[i] = trust.Value(math.NaN())
			// Uninformed prior for the error metric.
			d := 0.5 - float64(s.oracle.TrueValue(int(candidates[i])))
			res.SqErr += d * d
			res.SqN++
			continue
		}
		res.Estimates[i] = v
		d := float64(v) - float64(s.oracle.TrueValue(int(candidates[i])))
		res.SqErr += d * d
		res.SqN++
		if float64(v) > bestVal {
			bestVal, bestIdx = float64(v), i
		}
	}
	if bestIdx < 0 {
		bestIdx = p.rng.Intn(len(candidates)) // no opinions at all: blind pick
	}
	res.Chosen = candidates[bestIdx]
	res.Outcome = s.oracle.TransactionOutcome(int(res.Chosen))
	if tx.lastResp > 0 {
		res.ResponseTime = tx.lastResp - tx.start
	}
	s.curTx = nil

	// §3.4.3 maintenance: update expertise of responders on the chosen
	// provider's observed outcome; handle non-responders as offline; drop
	// agents below the removal threshold.
	var toRemove []topology.NodeID
	var toBackup []topology.NodeID
	for _, e := range p.list.entries {
		ests, responded := tx.responses[e.agent]
		if !responded {
			if e.expertise.Value() > 0 {
				toBackup = append(toBackup, e.agent)
			} else {
				toRemove = append(toRemove, e.agent)
			}
			continue
		}
		e.expertise.Update(ests[bestIdx].Consistent(res.Outcome))
		if e.expertise.Value() < s.cfg.RemoveThreshold {
			toRemove = append(toRemove, e.agent)
			p.banned[e.agent] = true // never re-select a known-poor agent (§4.2.2)
		}
	}
	for _, id := range toBackup {
		p.list.remove(id, true)
	}
	for _, id := range toRemove {
		p.list.remove(id, false)
	}

	// Refill when the list gets thin: probe backups first, then a new
	// agent-list request (§3.4.3).
	if len(p.list.entries) < s.cfg.RefillBelow {
		s.refill(requestor)
	}

	// §3.6: report the transaction result to all (current) trusted agents
	// through their onions. Under the §4.2.3 manipulation attack,
	// untrustworthy peers invert their reports.
	reported := res.Outcome
	if s.cfg.LyingReporters && !s.oracle.Trustworthy(int(requestor)) {
		reported = !res.Outcome
	}
	for _, e := range p.list.entries {
		path := append(append([]topology.NodeID(nil), e.route...), e.agent)
		s.onionSend(requestor, kindReportID, path, reportPayload{
			reporter: requestor, subject: res.Chosen, positive: reported,
		})
	}
	s.net.Run(0)

	res.TrustMessages = trafficMessages(s.net) - trustBefore
	res.MaintMessages = maintMessages(s.net) - maintBefore
	return res
}

// refill probes backup agents and restores live ones, then tops the list up
// with a fresh agent-list walk if still below the trusted-agent target.
func (s *System) refill(id topology.NodeID) {
	p := s.peers[id]
	if len(p.list.backups) > 0 {
		s.curProbe = &probeCollect{acks: make(map[topology.NodeID]bool)}
		for _, b := range p.list.backups {
			s.net.SendKindBytes(id, b.agent, kindProbeID, probePayload{origin: id, agent: b.agent}, probeSize())
		}
		s.net.Run(0)
		for agent := range s.curProbe.acks {
			if len(p.list.entries) >= s.cfg.TrustedAgents {
				break
			}
			p.list.restore(agent)
		}
		s.curProbe = nil
	}
	if len(p.list.entries) < s.cfg.TrustedAgents {
		s.acquireAgents(id)
	}
}

// RunRandomTransaction picks a random requestor and candidate set and runs a
// transaction, the workload unit of §5.2 ("started with randomly selecting a
// peer as a potential service provider").
func (s *System) RunRandomTransaction() TxResult {
	n := s.net.Graph().N()
	requestor := topology.NodeID(s.wrng.Intn(n))
	return s.RunTransaction(requestor, s.PickCandidates(requestor))
}

// PickCandidates draws CandidatesPerTx distinct provider candidates != requestor.
func (s *System) PickCandidates(requestor topology.NodeID) []topology.NodeID {
	w := s.wrng
	n := s.net.Graph().N()
	out := make([]topology.NodeID, 0, s.cfg.CandidatesPerTx)
	for _, idx := range w.Choose(n-1, s.cfg.CandidatesPerTx) {
		id := topology.NodeID(idx)
		if id >= requestor {
			id++
		}
		out = append(out, id)
	}
	return out
}
