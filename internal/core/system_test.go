package core

import (
	"math"
	"testing"

	"hirep/internal/simnet"
	"hirep/internal/topology"
	"hirep/internal/trust"
	"hirep/internal/xrand"
)

// buildSystem wires a complete hiREP system for tests.
func buildSystem(t testing.TB, n int, cfg Config, seed int64) *System {
	t.Helper()
	rng := xrand.New(seed)
	g, err := topology.Generate(topology.GenSpec{Model: topology.PowerLaw, N: n, AvgDegree: 4}, rng.Split("topo"))
	if err != nil {
		t.Fatal(err)
	}
	net, err := simnet.New(g, simnet.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	oracle := trust.NewOracle(n, 0.5, rng.Split("oracle"))
	sys, err := NewSystem(net, oracle, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.TrustedAgents = 0 },
		func(c *Config) { c.Tokens = 0 },
		func(c *Config) { c.TTL = 0 },
		func(c *Config) { c.OnionRelays = 0 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Alpha = 1 },
		func(c *Config) { c.RemoveThreshold = -0.1 },
		func(c *Config) { c.RemoveThreshold = 1 },
		func(c *Config) { c.RefillBelow = -1 },
		func(c *Config) { c.RefillBelow = 99 },
		func(c *Config) { c.CandidatesPerTx = 0 },
		func(c *Config) { c.AgentFrac = 0 },
		func(c *Config) { c.AgentFrac = 1.5 },
		func(c *Config) { c.MaliciousFrac = -1 },
		func(c *Config) { c.OfflineProb = 1 },
		func(c *Config) { c.Rating.GoodHi = 0.1 },
	}
	for i, mut := range mutations {
		c := DefaultConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewSystemRoleAssignment(t *testing.T) {
	sys := buildSystem(t, 400, DefaultConfig(), 1)
	agents := sys.AgentCount()
	if agents < 80 || agents > 160 {
		t.Fatalf("agent count %d far from 30%% of 400", agents)
	}
	honest := sys.HonestAgentCount()
	frac := float64(honest) / float64(agents)
	if frac < 0.8 || frac > 0.98 {
		t.Fatalf("honest fraction %.2f, want ~0.9", frac)
	}
}

func TestOnionRoutesExcludeSelf(t *testing.T) {
	sys := buildSystem(t, 100, DefaultConfig(), 2)
	for _, p := range sys.peers {
		if len(p.route) != sys.cfg.OnionRelays {
			t.Fatalf("peer %d has %d relays", p.id, len(p.route))
		}
		seen := map[topology.NodeID]bool{}
		for _, r := range p.route {
			if r == p.id {
				t.Fatalf("peer %d routes through itself", p.id)
			}
			if seen[r] {
				t.Fatalf("peer %d has duplicate relay %d", p.id, r)
			}
			seen[r] = true
		}
	}
}

func TestBootstrapFillsLists(t *testing.T) {
	sys := buildSystem(t, 300, DefaultConfig(), 3)
	maint := sys.Bootstrap()
	if maint <= 0 {
		t.Fatal("bootstrap sent no messages")
	}
	filled := 0
	for i := range sys.peers {
		agents := sys.TrustedAgentsOf(topology.NodeID(i))
		if len(agents) > sys.cfg.TrustedAgents {
			t.Fatalf("peer %d has %d agents, cap %d", i, len(agents), sys.cfg.TrustedAgents)
		}
		if len(agents) > 0 {
			filled++
		}
		// Every selected agent must actually be agent-capable, and not self.
		for _, a := range agents {
			if sys.agents[a] == nil {
				t.Fatalf("peer %d trusts non-agent %d", i, a)
			}
			if a == topology.NodeID(i) {
				t.Fatalf("peer %d trusts itself", i)
			}
		}
	}
	if filled < 290 {
		t.Fatalf("only %d/300 peers found agents", filled)
	}
	// Initial expertise must be 1 (§3.4.3).
	for _, a := range sys.TrustedAgentsOf(0) {
		v, ok := sys.ExpertiseOf(0, a)
		if !ok || v != 1 {
			t.Fatalf("initial expertise %v", v)
		}
	}
}

func TestTransactionProducesResult(t *testing.T) {
	sys := buildSystem(t, 200, DefaultConfig(), 4)
	sys.Bootstrap()
	res := sys.RunRandomTransaction()
	if res.Responded == 0 {
		t.Fatal("no agents responded")
	}
	if len(res.Estimates) != sys.cfg.CandidatesPerTx {
		t.Fatalf("%d estimates", len(res.Estimates))
	}
	found := false
	for _, c := range res.Candidates {
		if c == res.Chosen {
			found = true
		}
		if c == res.Requestor {
			t.Fatal("requestor among candidates")
		}
	}
	if !found {
		t.Fatal("chosen not among candidates")
	}
	if res.ResponseTime <= 0 {
		t.Fatal("non-positive response time")
	}
	if res.TrustMessages <= 0 {
		t.Fatal("no trust messages counted")
	}
	if res.Outcome != sys.oracle.TransactionOutcome(int(res.Chosen)) {
		t.Fatal("outcome inconsistent with oracle")
	}
}

func TestTrafficMatchesAnalyticBound(t *testing.T) {
	// §4.1: trust-distribution messages per transaction are O(c). With our
	// message-accurate onions: c requests of (o+1) hops, c responses of
	// (o+1) hops, and <= c reports of (o+1) hops.
	cfg := DefaultConfig()
	cfg.OfflineProb = 0
	sys := buildSystem(t, 300, cfg, 5)
	sys.Bootstrap()
	for i := 0; i < 5; i++ {
		res := sys.RunRandomTransaction()
		c := int64(cfg.TrustedAgents)
		o := int64(cfg.OnionRelays)
		maxMsgs := 3 * c * (o + 1)
		if res.TrustMessages > maxMsgs {
			t.Fatalf("tx %d: %d messages exceed analytic bound %d", i, res.TrustMessages, maxMsgs)
		}
		if res.TrustMessages < 2*(o+1) {
			t.Fatalf("tx %d: %d messages suspiciously few", i, res.TrustMessages)
		}
	}
}

func TestTrafficIndependentOfDegree(t *testing.T) {
	// Figure 5's hiREP property: per-transaction traffic does not depend on
	// the overlay degree (requests go point-to-point through onions).
	perDegree := map[int]int64{}
	for _, deg := range []int{2, 4} {
		rng := xrand.New(77)
		g, err := topology.Generate(topology.GenSpec{Model: topology.FixedAvgDegree, N: 300, AvgDegree: deg}, rng.Split("topo"))
		if err != nil {
			t.Fatal(err)
		}
		net, _ := simnet.New(g, simnet.DefaultConfig(77))
		oracle := trust.NewOracle(300, 0.5, rng.Split("oracle"))
		sys, err := NewSystem(net, oracle, DefaultConfig(), rng)
		if err != nil {
			t.Fatal(err)
		}
		sys.Bootstrap()
		var total int64
		for i := 0; i < 10; i++ {
			total += sys.RunRandomTransaction().TrustMessages
		}
		perDegree[deg] = total
	}
	lo, hi := float64(perDegree[2]), float64(perDegree[4])
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi/lo > 1.25 {
		t.Fatalf("hiREP traffic depends on degree: %v", perDegree)
	}
}

func TestExpertiseLearningFiltersBadAgents(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaliciousFrac = 0.4 // plenty of bad agents to learn about
	sys := buildSystem(t, 300, cfg, 6)
	sys.Bootstrap()
	// Expertise is learned by the transacting peer: train one requestor.
	requestor := topology.NodeID(0)
	for i := 0; i < 60; i++ {
		sys.RunTransaction(requestor, sys.PickCandidates(requestor))
	}
	honest, total := 0, 0
	for _, a := range sys.TrustedAgentsOf(requestor) {
		total++
		if sys.agents[a] != nil && sys.agents[a].honest {
			honest++
		}
	}
	if total == 0 {
		t.Fatal("requestor has no agents left")
	}
	frac := float64(honest) / float64(total)
	if frac < 0.75 {
		t.Fatalf("after training only %.2f of trusted agents are honest (population honest rate 0.6)", frac)
	}
}

func TestAccuracyImprovesWithTraining(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaliciousFrac = 0.3
	sys := buildSystem(t, 300, cfg, 7)
	sys.Bootstrap()
	requestor := topology.NodeID(5)
	var early, late trust.MSEAccumulator
	for i := 0; i < 200; i++ {
		res := sys.RunTransaction(requestor, sys.PickCandidates(requestor))
		var acc *trust.MSEAccumulator
		switch {
		case i < 20:
			acc = &early
		case i >= 150:
			acc = &late
		default:
			continue
		}
		for j, c := range res.Candidates {
			est := res.Estimates[j]
			if math.IsNaN(float64(est)) {
				est = 0.5
			}
			acc.Observe(est, sys.oracle.TrueValue(int(c)))
		}
	}
	if late.MSE() >= early.MSE() {
		t.Fatalf("MSE did not improve: early %.4f late %.4f", early.MSE(), late.MSE())
	}
}

func TestChurnUsesBackupCache(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OfflineProb = 0.3
	sys := buildSystem(t, 200, cfg, 8)
	sys.Bootstrap()
	sawBackup := false
	for i := 0; i < 40 && !sawBackup; i++ {
		sys.RunRandomTransaction()
		for j := 0; j < 200; j++ {
			if sys.BackupCountOf(topology.NodeID(j)) > 0 {
				sawBackup = true
				break
			}
		}
	}
	if !sawBackup {
		t.Fatal("churn never populated a backup cache")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []TxResult {
		sys := buildSystem(t, 150, DefaultConfig(), 99)
		sys.Bootstrap()
		out := make([]TxResult, 10)
		for i := range out {
			out[i] = sys.RunRandomTransaction()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Requestor != b[i].Requestor || a[i].Chosen != b[i].Chosen ||
			a[i].TrustMessages != b[i].TrustMessages || a[i].ResponseTime != b[i].ResponseTime {
			t.Fatalf("run diverged at tx %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestNewSystemRejectsMismatchedOracle(t *testing.T) {
	rng := xrand.New(1)
	g, _ := topology.Generate(topology.GenSpec{Model: topology.PowerLaw, N: 50, AvgDegree: 4}, rng)
	net, _ := simnet.New(g, simnet.DefaultConfig(1))
	oracle := trust.NewOracle(40, 0.5, rng)
	if _, err := NewSystem(net, oracle, DefaultConfig(), rng); err == nil {
		t.Fatal("mismatched oracle accepted")
	}
}

func TestNewSystemRejectsTooManyRelays(t *testing.T) {
	rng := xrand.New(1)
	g, _ := topology.Generate(topology.GenSpec{Model: topology.PowerLaw, N: 5, AvgDegree: 2}, rng)
	net, _ := simnet.New(g, simnet.DefaultConfig(1))
	oracle := trust.NewOracle(5, 0.5, rng)
	cfg := DefaultConfig()
	cfg.OnionRelays = 5
	if _, err := NewSystem(net, oracle, cfg, rng); err == nil {
		t.Fatal("relay count >= n-1 accepted")
	}
}

func TestReportsReachAgents(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Model = ModelTally
	sys := buildSystem(t, 200, cfg, 11)
	sys.Bootstrap()
	for i := 0; i < 30; i++ {
		sys.RunRandomTransaction()
	}
	reports := 0
	for _, a := range sys.agents {
		if a == nil {
			continue
		}
		for _, tl := range a.tallies {
			reports += tl.pos + tl.neg
		}
	}
	if reports == 0 {
		t.Fatal("no transaction reports stored at any agent")
	}
}

func TestMaintenanceSeparatedFromTrustTraffic(t *testing.T) {
	sys := buildSystem(t, 200, DefaultConfig(), 12)
	boot := sys.Bootstrap()
	if boot <= 0 {
		t.Fatal("bootstrap cost not measured")
	}
	res := sys.RunRandomTransaction()
	// A normal transaction with full lists needs no maintenance traffic.
	if res.MaintMessages != 0 && res.MaintMessages > boot {
		t.Fatalf("maintenance messages %d look wrong", res.MaintMessages)
	}
}

func TestTrafficBytesAccounted(t *testing.T) {
	sys := buildSystem(t, 200, DefaultConfig(), 31)
	sys.Bootstrap()
	res := sys.RunRandomTransaction()
	var bytes int64
	for _, k := range TrafficKinds() {
		bytes += sys.net.Bytes(k)
	}
	if bytes == 0 {
		t.Fatal("no trust-traffic bytes accounted")
	}
	// Onion messages are large: hundreds of bytes per message on average.
	perMsg := float64(bytes) / float64(res.TrustMessages)
	if perMsg < 200 || perMsg > 5000 {
		t.Fatalf("bytes per onion message %.0f implausible", perMsg)
	}
}
