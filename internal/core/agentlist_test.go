package core

import (
	"testing"

	"hirep/internal/topology"
	"hirep/internal/xrand"
)

func TestRankAgentsSingleList(t *testing.T) {
	lists := [][]Recommendation{{
		{Agent: 1, Weight: 0.9},
		{Agent: 2, Weight: 0.5},
		{Agent: 3, Weight: 0.7},
	}}
	ranks := RankAgents(lists, 3)
	// Sorted by weight: 1 (0.9) -> rank 3, 3 (0.7) -> rank 2, 2 (0.5) -> rank 1.
	if ranks[1] != 3 || ranks[3] != 2 || ranks[2] != 1 {
		t.Fatalf("ranks %v", ranks)
	}
}

func TestRankAgentsMaxAcrossLists(t *testing.T) {
	// §3.4.2: "For the same agent who gets different rank values from
	// different agent lists, the highest rank value will be its final rank."
	lists := [][]Recommendation{
		{{Agent: 1, Weight: 0.2}, {Agent: 2, Weight: 0.9}}, // 1 ranks 1 here
		{{Agent: 1, Weight: 0.8}},                          // 1 ranks 2 here
	}
	ranks := RankAgents(lists, 2)
	if ranks[1] != 2 {
		t.Fatalf("agent 1 final rank %d, want max 2", ranks[1])
	}
}

func TestRankAgentsBadMouthingBlunted(t *testing.T) {
	// §4.2.1: attackers giving a good agent many low-weight recommendations
	// cannot lower the rank it earns from one honest list.
	honest := []Recommendation{{Agent: 7, Weight: 0.95}}
	lists := [][]Recommendation{honest}
	for i := 0; i < 20; i++ {
		lists = append(lists, []Recommendation{{Agent: 7, Weight: 0.01}, {Agent: 99, Weight: 0.99}})
	}
	ranks := RankAgents(lists, 5)
	if ranks[7] != 5 {
		t.Fatalf("bad-mouthed good agent rank %d, want 5", ranks[7])
	}
}

func TestRankAgentsBallotStuffingBounded(t *testing.T) {
	// §4.2.1: many high recommendations for a poor agent have the same effect
	// as a single one — rank saturates at n, it cannot exceed honest agents.
	lists := [][]Recommendation{}
	for i := 0; i < 50; i++ {
		lists = append(lists, []Recommendation{{Agent: 13, Weight: 1.0}})
	}
	lists = append(lists, []Recommendation{{Agent: 4, Weight: 0.9}})
	ranks := RankAgents(lists, 3)
	if ranks[13] != 3 || ranks[4] != 3 {
		t.Fatalf("ranks %v: stuffing should not exceed an honest top rank", ranks)
	}
}

func TestRankAgentsLongListTail(t *testing.T) {
	// Positions beyond n get rank 0.
	list := []Recommendation{}
	for i := 0; i < 10; i++ {
		list = append(list, Recommendation{Agent: topology.NodeID(i), Weight: 1.0 - float64(i)*0.05})
	}
	ranks := RankAgents([][]Recommendation{list}, 3)
	if ranks[0] != 3 || ranks[1] != 2 || ranks[2] != 1 {
		t.Fatalf("head ranks %v", ranks)
	}
	for i := 3; i < 10; i++ {
		if ranks[topology.NodeID(i)] != 0 {
			t.Fatalf("tail agent %d rank %d, want 0", i, ranks[topology.NodeID(i)])
		}
	}
}

func TestRankAgentsEmpty(t *testing.T) {
	if len(RankAgents(nil, 5)) != 0 {
		t.Fatal("empty input produced ranks")
	}
}

func TestSelectAgentsTopRanked(t *testing.T) {
	ranks := map[topology.NodeID]int{1: 5, 2: 4, 3: 3, 4: 2, 5: 1}
	got := SelectAgents(ranks, 3, -1, xrand.New(1))
	if len(got) != 3 {
		t.Fatalf("selected %d", len(got))
	}
	want := map[topology.NodeID]bool{1: true, 2: true, 3: true}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("selected %v, expected top-3 by rank", got)
		}
	}
}

func TestSelectAgentsExcludesSelf(t *testing.T) {
	ranks := map[topology.NodeID]int{1: 5, 2: 4}
	got := SelectAgents(ranks, 5, 1, xrand.New(1))
	for _, id := range got {
		if id == 1 {
			t.Fatal("requestor selected itself")
		}
	}
	if len(got) != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestSelectAgentsTieRandomized(t *testing.T) {
	ranks := map[topology.NodeID]int{}
	for i := 0; i < 10; i++ {
		ranks[topology.NodeID(i)] = 3 // all tied
	}
	counts := map[topology.NodeID]int{}
	for seed := int64(0); seed < 200; seed++ {
		for _, id := range SelectAgents(ranks, 2, -1, xrand.New(seed)) {
			counts[id]++
		}
	}
	// Every agent should be picked sometimes — a fixed tie-break would
	// concentrate selection.
	for i := 0; i < 10; i++ {
		if counts[topology.NodeID(i)] == 0 {
			t.Fatalf("agent %d never selected across 200 seeds: %v", i, counts)
		}
	}
}

func TestAgentListAddRemove(t *testing.T) {
	l := newAgentList(5)
	l.add(1, nil, 0.3)
	l.add(1, nil, 0.3) // duplicate no-op
	l.add(2, nil, 0.3)
	if len(l.entries) != 2 {
		t.Fatalf("%d entries", len(l.entries))
	}
	if !l.has(1) || l.has(3) {
		t.Fatal("has() wrong")
	}
	l.remove(1, false)
	if l.has(1) || len(l.backups) != 0 {
		t.Fatal("discard remove failed")
	}
	l.remove(2, true)
	if l.has(2) || len(l.backups) != 1 {
		t.Fatal("backup remove failed")
	}
}

func TestAgentListBackupMostRecentFirst(t *testing.T) {
	l := newAgentList(2)
	for _, id := range []topology.NodeID{1, 2, 3} {
		l.add(id, nil, 0.3)
	}
	l.remove(1, true)
	l.remove(2, true)
	l.remove(3, true)
	// Cap 2, most recent first: [3, 2]; 1 evicted.
	if len(l.backups) != 2 || l.backups[0].agent != 3 || l.backups[1].agent != 2 {
		t.Fatalf("backups %v", []topology.NodeID{l.backups[0].agent, l.backups[1].agent})
	}
}

func TestAgentListZeroExpertiseNotBackedUp(t *testing.T) {
	l := newAgentList(5)
	l.add(1, nil, 0.5)
	e := l.find(1)
	for i := 0; i < 64; i++ {
		e.expertise.Update(false)
	}
	if e.expertise.Value() > 1e-9 {
		t.Skipf("expertise did not reach ~0: %v", e.expertise.Value())
	}
	// §3.4.3: only positive-accuracy agents go to backup.
	l.remove(1, true)
	if len(l.backups) != 0 {
		t.Fatal("zero-expertise agent backed up")
	}
}

func TestAgentListRestore(t *testing.T) {
	l := newAgentList(5)
	l.add(1, nil, 0.3)
	l.remove(1, true)
	if !l.restore(1) {
		t.Fatal("restore failed")
	}
	if !l.has(1) || len(l.backups) != 0 {
		t.Fatal("restore left inconsistent state")
	}
	if l.restore(99) {
		t.Fatal("restored nonexistent backup")
	}
}

func TestAgentListWeights(t *testing.T) {
	l := newAgentList(5)
	l.add(4, nil, 0.3)
	w := l.weights()
	if len(w) != 1 || w[0].Agent != 4 || w[0].Weight != 1 {
		t.Fatalf("weights %v (initial expertise must be 1)", w)
	}
}
