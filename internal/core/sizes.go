package core

// Wire-size model for the bytes view of the traffic experiments. The
// simulator's message counters reproduce the paper's metric (message count);
// these estimates — grounded in the live protocol's actual encodings
// (internal/wire framing, pkc seal overhead, Ed25519/X25519 key and
// signature sizes) — additionally let experiments report traffic volume,
// where hiREP's onion layers make individual messages much larger than
// flood queries.
const (
	sizeFrame  = 5  // length prefix + type byte
	sizeAddr   = 21 // "255.255.255.255:65535"
	sizeSig    = 64 // Ed25519 signature
	sizeNodeID = 20 // SHA-1 digest
	sizeNonce  = 16
	sizeKey    = 32 // Ed25519 or X25519 public key
	sizeSeal   = 60 // pkc.SealOverhead(): ephemeral key + GCM nonce + tag
	sizeField  = 4  // length prefix per codec field
)

// onionBlobSize is the ciphertext size of an onion with the given number of
// remaining layers: a fake core (sealed marker) plus one sealed
// (addr ++ inner) wrap per layer.
func onionBlobSize(layers int) int {
	core := sizeSeal + 2 + 19 // sealed fake-onion marker
	return core + layers*(sizeSeal+2+sizeAddr)
}

// onionWireSize is a full published onion: entry address, blob, sequence
// number, builder signature, plus field framing.
func onionWireSize(layers int) int {
	return sizeAddr + onionBlobSize(layers) + 8 + sizeSig + 4*sizeField
}

// payloadSize estimates the end-to-end (sealed) payload carried through an
// onion for each protocol message. o is the configured onion length (reply
// onions embedded in requests have o layers).
func (s *System) payloadSize(inner any) int {
	switch p := inner.(type) {
	case trustReqPayload:
		// SP + AP + subject list + nonce + embedded reply onion, sealed.
		return sizeKey*2 + sizeNodeID*len(p.candidates) + sizeNonce +
			onionWireSize(s.cfg.OnionRelays) + 6*sizeField + sizeSeal
	case trustRespPayload:
		// signed (values + nonce + flag) + SP + signature, sealed.
		return 8*len(p.estimates) + sizeNonce + 1 + sizeKey + sizeSig + 5*sizeField + sizeSeal
	case reportPayload:
		// reporter id + signed report wire (subject+outcome+nonce+sig), sealed.
		return sizeNodeID + (sizeNodeID + 1 + sizeNonce + sizeSig) + 2*sizeField + sizeSeal
	default:
		return 64
	}
}

// onionHopSize is the on-wire size of one onion-envelope hop: frame, the
// blob with the given remaining layers, and the sealed payload.
func onionHopSize(remainingLayers, payload int) int {
	return sizeFrame + onionBlobSize(remainingLayers) + 8 + payload + 2*sizeField
}

// listReqSize / listRespSize / probeSize model the maintenance messages.
func listReqSize() int { return sizeFrame + sizeNonce + sizeAddr + 16 + 4*sizeField }

func listRespSize(entries int) int {
	return sizeFrame + sizeNonce + entries*(sizeNodeID+8) + 2*sizeField
}

func probeSize() int { return sizeFrame + sizeNodeID + sizeAddr + 2*sizeField }
