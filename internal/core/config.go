// Package core implements the hiREP peer protocol (§3 of the paper) on top
// of the discrete-event simulator: trusted-agent list formation with
// token/TTL-limited requests (§3.4.1), agent ranking and selection (§3.4.2),
// list maintenance with expertise thresholds and a backup-agent cache
// (§3.4.3), and the onion-routed trust value request / response / transaction
// report exchanges (§3.5, §3.6).
//
// The simulator models onions as relay routes and counts every hop as one
// message, which is the unit of the paper's traffic metric; cryptographic
// onions with real key material live in internal/onion and are exercised by
// the live-node prototype (internal/node).
package core

import (
	"fmt"

	"hirep/internal/simnet"
	"hirep/internal/trust"
)

// Config holds the hiREP system parameters (Table 1 of the paper, with the
// reconstruction documented in DESIGN.md).
type Config struct {
	// TrustedAgents is c, the number of trusted agents each peer keeps.
	TrustedAgents int
	// Tokens is the initial token count of an agent-list request (Table 1).
	Tokens int
	// TTL bounds agent-list request forwarding (Table 1; Gnutella default 7).
	TTL int
	// OnionRelays is the number of relays in each onion (Table 1).
	OnionRelays int
	// Alpha is the EWMA smoothing factor of the expertise update (§3.4.3).
	Alpha float64
	// RemoveThreshold drops a trusted agent whose expertise falls below it;
	// the paper's hirep-4/6/8 systems use 0.4/0.6/0.8 (Figure 6).
	RemoveThreshold float64
	// RefillBelow triggers backup probing and a new agent-list request when
	// the trusted-agent list shrinks below it (§3.4.3's "threshold, say 50").
	RefillBelow int
	// CandidatesPerTx is how many provider candidates a requestor evaluates
	// per transaction (§3.6's "group of file provider candidates").
	CandidatesPerTx int
	// AgentFrac is the fraction of nodes with bandwidth above 64k that can
	// serve as reputation agents (§3.2).
	AgentFrac float64
	// MaliciousFrac is the fraction of reputation agents with poor/inverted
	// evaluation behaviour (Table 1's "poor performance agents").
	MaliciousFrac float64
	// OfflineProb is the per-transaction probability that an agent is
	// offline, driving the backup-cache path of §3.4.3 (0 in the paper's
	// figures; used by the churn ablation).
	OfflineProb float64
	// PoisonFrac is the fraction of peers that answer agent-list requests
	// with fabricated recommendations promoting malicious agents at maximum
	// weight — the trusted-agent manipulation attack of §4.2.1.
	PoisonFrac float64
	// Rating is the evaluator behaviour model (Table 1's rating ranges).
	Rating trust.RatingModel
	// Model selects how honest agents compute trust values from accumulated
	// transaction reports (§4.2.3's "next level computation model").
	Model AgentModel
	// LyingReporters makes untrustworthy peers invert their transaction
	// reports — the reputation-evaluation manipulation of §4.2.3. The
	// credibility-weighted agent model is the designed defence.
	LyingReporters bool
}

// AgentModel selects the honest agents' trust computation.
type AgentModel int

const (
	// ModelTally (the default): answer with the report tally estimate when
	// enough reports exist, else fall back to the rating model.
	ModelTally AgentModel = iota
	// ModelRating: ignore reports entirely; agents answer from their local
	// rating behaviour only (the paper's minimal agent).
	ModelRating
	// ModelCredibility: weight each reporter's per-subject tally by the
	// agent's trust in the reporter itself — PeerTrust-style feedback
	// credibility, robust to lying reporters (§4.2.3).
	ModelCredibility
)

func (m AgentModel) String() string {
	switch m {
	case ModelTally:
		return "tally"
	case ModelRating:
		return "rating"
	case ModelCredibility:
		return "credibility"
	default:
		return fmt.Sprintf("AgentModel(%d)", int(m))
	}
}

// DefaultConfig returns Table 1's defaults.
func DefaultConfig() Config {
	return Config{
		TrustedAgents:   10,
		Tokens:          10,
		TTL:             7,
		OnionRelays:     5,
		Alpha:           0.3,
		RemoveThreshold: 0.4,
		RefillBelow:     5,
		CandidatesPerTx: 3,
		AgentFrac:       0.3,
		MaliciousFrac:   0.1,
		OfflineProb:     0,
		Rating:          trust.DefaultRatingModel(),
		Model:           ModelTally,
	}
}

// Validate checks parameter sanity.
func (c Config) Validate() error {
	switch {
	case c.TrustedAgents < 1:
		return fmt.Errorf("core: TrustedAgents must be >= 1, got %d", c.TrustedAgents)
	case c.Tokens < 1:
		return fmt.Errorf("core: Tokens must be >= 1, got %d", c.Tokens)
	case c.TTL < 1:
		return fmt.Errorf("core: TTL must be >= 1, got %d", c.TTL)
	case c.OnionRelays < 1:
		return fmt.Errorf("core: OnionRelays must be >= 1, got %d", c.OnionRelays)
	case c.Alpha <= 0 || c.Alpha >= 1:
		return fmt.Errorf("core: Alpha must be in (0,1), got %v", c.Alpha)
	case c.RemoveThreshold < 0 || c.RemoveThreshold >= 1:
		return fmt.Errorf("core: RemoveThreshold must be in [0,1), got %v", c.RemoveThreshold)
	case c.RefillBelow < 0 || c.RefillBelow > c.TrustedAgents:
		return fmt.Errorf("core: RefillBelow %d out of [0,%d]", c.RefillBelow, c.TrustedAgents)
	case c.CandidatesPerTx < 1:
		return fmt.Errorf("core: CandidatesPerTx must be >= 1, got %d", c.CandidatesPerTx)
	case c.AgentFrac <= 0 || c.AgentFrac > 1:
		return fmt.Errorf("core: AgentFrac must be in (0,1], got %v", c.AgentFrac)
	case c.MaliciousFrac < 0 || c.MaliciousFrac > 1:
		return fmt.Errorf("core: MaliciousFrac must be in [0,1], got %v", c.MaliciousFrac)
	case c.OfflineProb < 0 || c.OfflineProb >= 1:
		return fmt.Errorf("core: OfflineProb must be in [0,1), got %v", c.OfflineProb)
	case c.PoisonFrac < 0 || c.PoisonFrac > 1:
		return fmt.Errorf("core: PoisonFrac must be in [0,1], got %v", c.PoisonFrac)
	case c.Model != ModelTally && c.Model != ModelRating && c.Model != ModelCredibility:
		return fmt.Errorf("core: unknown agent model %v", c.Model)
	}
	return c.Rating.Validate()
}

// Message kinds used by the hiREP protocol; the simulator counts messages by
// kind for the traffic experiments.
const (
	KindAgentListReq  = "hirep/agent-list-req"
	KindAgentListResp = "hirep/agent-list-resp"
	KindTrustReq      = "hirep/trust-req"
	KindTrustResp     = "hirep/trust-resp"
	KindReport        = "hirep/report"
	KindProbe         = "hirep/probe"
	KindProbeAck      = "hirep/probe-ack"
)

// Interned kind IDs for the send fast path (simnet.InternKind).
var (
	kindAgentListReqID  = simnet.InternKind(KindAgentListReq)
	kindAgentListRespID = simnet.InternKind(KindAgentListResp)
	kindTrustReqID      = simnet.InternKind(KindTrustReq)
	kindTrustRespID     = simnet.InternKind(KindTrustResp)
	kindReportID        = simnet.InternKind(KindReport)
	kindProbeID         = simnet.InternKind(KindProbe)
	kindProbeAckID      = simnet.InternKind(KindProbeAck)
)

// TrafficKinds lists the kinds that make up hiREP's trust-distribution
// traffic, the quantity Figure 5 plots.
func TrafficKinds() []string {
	return []string{KindTrustReq, KindTrustResp, KindReport}
}

// MaintenanceKinds lists the kinds of list-formation and maintenance traffic,
// reported separately because the paper amortizes it ("the reputation list
// initialization is executed only once for each peer", §4.1).
func MaintenanceKinds() []string {
	return []string{KindAgentListReq, KindAgentListResp, KindProbe, KindProbeAck}
}
