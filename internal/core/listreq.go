package core

import (
	"hirep/internal/simnet"
	"hirep/internal/topology"
)

// This file implements the trusted-agent list request walk of §3.4.1 and
// Figure 4, plus bootstrap and refill built on it.
//
// A requestor emits an agent-list request carrying a token budget and a TTL.
// A node that can answer (it has a trusted-agent list, or it is itself a
// reputation agent and self-nominates) returns its recommendations directly
// to the requestor, consuming one token. Remaining tokens are split across
// the node's other neighbors while TTL lasts. Nodes answer a given request at
// most once; revisits drop the tokens, which is the token budget doing its
// job of bounding traffic.

// onListReq handles an incoming agent-list request at any node.
func (s *System) onListReq(nw *simnet.Network, m simnet.Message) {
	p := m.Payload.(listReqPayload)
	seen := s.seenListReq[p.reqID]
	if seen == nil {
		seen = make(map[topology.NodeID]bool)
		s.seenListReq[p.reqID] = seen
	}
	if seen[m.To] {
		return // duplicate arrival: tokens die here
	}
	seen[m.To] = true
	tokens := p.tokens
	// Answer if this node has something to offer and a token remains.
	if tokens > 0 && m.To != p.origin {
		var recs []Recommendation
		if s.peers[m.To].poisoner {
			// §4.2.1 attack: fabricate a list promoting colluding malicious
			// agents at maximum weight.
			recs = s.poisonedRecommendations()
		} else {
			recs = s.peers[m.To].list.weights()
		}
		if len(recs) == 0 && s.agents[m.To] != nil {
			// §3.4.1: "The node can return its own nodeid if it has no
			// trusted agent list" — self-nomination with initial weight 1.
			recs = []Recommendation{{Agent: m.To, Weight: 1}}
		}
		if len(recs) > 0 {
			nw.SendKindBytes(m.To, p.origin, kindAgentListRespID,
				listRespPayload{reqID: p.reqID, recs: recs}, listRespSize(len(recs)))
			tokens--
		}
	}
	if tokens <= 0 || p.ttl <= 1 {
		return
	}
	// Forward the remaining tokens, split across neighbors except the sender.
	var targets []topology.NodeID
	for _, nb := range s.net.Graph().Neighbors(m.To) {
		if nb != m.From {
			targets = append(targets, nb)
		}
	}
	if len(targets) == 0 {
		return
	}
	rng := s.peers[m.To].rng
	rng.Shuffle(len(targets), func(i, j int) { targets[i], targets[j] = targets[j], targets[i] })
	if len(targets) > tokens {
		targets = targets[:tokens]
	}
	base := tokens / len(targets)
	extra := tokens % len(targets)
	for i, tgt := range targets {
		t := base
		if i < extra {
			t++
		}
		if t == 0 {
			continue
		}
		nw.SendKindBytes(m.To, tgt, kindAgentListReqID, listReqPayload{
			origin: p.origin, reqID: p.reqID, tokens: t, ttl: p.ttl - 1,
		}, listReqSize())
	}
}

// poisonedRecommendations fabricates a list of colluding malicious agents at
// maximum weight (attackers know their cohort).
func (s *System) poisonedRecommendations() []Recommendation {
	var recs []Recommendation
	for i, a := range s.agents {
		if a != nil && !a.honest {
			recs = append(recs, Recommendation{Agent: topology.NodeID(i), Weight: 1})
			if len(recs) >= s.cfg.TrustedAgents {
				break
			}
		}
	}
	return recs
}

// onListResp collects an agent-list response at the requestor.
func (s *System) onListResp(m simnet.Message) {
	p := m.Payload.(listRespPayload)
	if s.curList == nil || s.curList.id != p.reqID {
		return // stale response from an earlier walk
	}
	s.curList.lists = append(s.curList.lists, p.recs)
}

// requestAgentLists runs one synchronous agent-list walk for peer id and
// returns the collected recommendation lists. It drives the simulator until
// the walk completes.
func (s *System) requestAgentLists(id topology.NodeID) [][]Recommendation {
	s.nextID++
	reqID := s.nextID
	s.curList = &listCollect{id: reqID}
	p := s.peers[id]
	// §3.4.1/Figure 4: the requestor distributes the request with its tokens
	// to its neighbors. Seed the walk by treating the origin as visited.
	s.seenListReq[reqID] = map[topology.NodeID]bool{id: true}
	neighbors := append([]topology.NodeID(nil), s.net.Graph().Neighbors(id)...)
	p.rng.Shuffle(len(neighbors), func(i, j int) { neighbors[i], neighbors[j] = neighbors[j], neighbors[i] })
	if len(neighbors) > s.cfg.Tokens {
		neighbors = neighbors[:s.cfg.Tokens]
	}
	if len(neighbors) > 0 {
		base := s.cfg.Tokens / len(neighbors)
		extra := s.cfg.Tokens % len(neighbors)
		for i, nb := range neighbors {
			t := base
			if i < extra {
				t++
			}
			s.net.SendKindBytes(id, nb, kindAgentListReqID, listReqPayload{
				origin: id, reqID: reqID, tokens: t, ttl: s.cfg.TTL,
			}, listReqSize())
		}
	}
	s.net.Run(0)
	lists := s.curList.lists
	s.curList = nil
	delete(s.seenListReq, reqID)
	return lists
}

// acquireAgents runs a list walk for peer id, ranks the recommendations
// (§3.4.2) and fills the peer's trusted-agent list up to the configured size.
func (s *System) acquireAgents(id topology.NodeID) int {
	p := s.peers[id]
	lists := s.requestAgentLists(id)
	ranks := RankAgents(lists, s.cfg.TrustedAgents)
	// Never select a node that is not actually agent-capable: the walk only
	// nominates agents, but recommendations age.
	want := s.cfg.TrustedAgents - len(p.list.entries)
	if want <= 0 {
		return 0
	}
	added := 0
	for _, agent := range SelectAgents(ranks, len(ranks), id, p.rng) {
		if added >= want {
			break
		}
		if s.agents[agent] == nil || p.list.has(agent) || p.banned[agent] {
			continue
		}
		p.list.add(agent, s.relaysOf(agent), s.cfg.Alpha)
		added++
	}
	return added
}

// Bootstrap builds every peer's initial trusted-agent list, in a random peer
// order so later peers benefit from earlier peers' lists (the
// recommendation propagation of §3.4.1). It returns the total maintenance
// messages spent.
func (s *System) Bootstrap() int64 {
	before := maintMessages(s.net)
	order := s.rng.Split("bootstrap").Perm(len(s.peers))
	for _, i := range order {
		s.acquireAgents(topology.NodeID(i))
	}
	return maintMessages(s.net) - before
}

// maintMessages sums the maintenance message counters.
func maintMessages(nw *simnet.Network) int64 {
	var total int64
	for _, k := range MaintenanceKinds() {
		total += nw.Count(k)
	}
	return total
}

// trafficMessages sums the trust-distribution message counters.
func trafficMessages(nw *simnet.Network) int64 {
	var total int64
	for _, k := range TrafficKinds() {
		total += nw.Count(k)
	}
	return total
}
