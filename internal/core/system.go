package core

import (
	"fmt"

	"hirep/internal/simnet"
	"hirep/internal/topology"
	"hirep/internal/trust"
	"hirep/internal/xrand"
)

// onionEnvelope carries a protocol message along an onion route. rest holds
// the hops still to visit; the final element is the true destination. Every
// hop is one simulator message, which is how onion forwarding enters the
// traffic counts exactly as in §4.1's 2c(o_i+o_j) analysis.
type onionEnvelope struct {
	rest  []topology.NodeID
	inner any
	// payloadSize is the sealed end-to-end payload's wire size, carried so
	// each forwarding hop can account its own on-wire size.
	payloadSize int
}

// Protocol payloads.
type (
	listReqPayload struct {
		origin topology.NodeID
		reqID  uint64
		tokens int
		ttl    int
	}
	listRespPayload struct {
		reqID uint64
		recs  []Recommendation
	}
	trustReqPayload struct {
		txID       uint64
		requestor  topology.NodeID
		candidates []topology.NodeID
		replyRoute []topology.NodeID
	}
	trustRespPayload struct {
		txID      uint64
		agent     topology.NodeID
		estimates []trust.Value
	}
	reportPayload struct {
		reporter topology.NodeID
		subject  topology.NodeID
		positive bool
	}
	probePayload struct {
		origin topology.NodeID
		agent  topology.NodeID
	}
	probeAckPayload struct {
		agent topology.NodeID
	}
)

// tally accumulates transaction reports at an agent.
type tally struct{ pos, neg int }

// estimate is the Jeffreys-prior positive fraction (p+1/2)/(p+n+1); the
// lighter prior matters because with only a couple of reports a Laplace
// estimate sits closer to 0.5 than the agent's own rating model would.
func (t tally) estimate() trust.Value {
	return trust.Value((float64(t.pos) + 0.5) / (float64(t.pos+t.neg) + 1))
}

// minReports is how many reports an honest agent needs about a subject
// before it prefers report evidence over its rating model.
const minReports = 2

// agentState is the reputation-agent role of a node.
type agentState struct {
	honest  bool
	offline bool // refreshed per transaction when churn is enabled
	killed  bool // permanently down (DoS experiment)
	tallies map[topology.NodeID]tally
	// perReporter keeps reporter-attributed tallies for the
	// credibility-weighted model (reporter -> subject -> tally).
	perReporter map[topology.NodeID]map[topology.NodeID]tally
	rng         *xrand.RNG
}

// down reports whether the agent cannot serve right now.
func (a *agentState) down() bool { return a.offline || a.killed }

// peerState is the general-peer role of a node (every node has one).
type peerState struct {
	id       topology.NodeID
	list     *agentList
	route    []topology.NodeID // the peer's own onion relays
	rng      *xrand.RNG
	poisoner bool // answers list requests with fabricated recommendations (§4.2.1)
	// banned remembers agents removed for poor expertise so recommendations
	// cannot re-inject them — the peer "filtering out poor performance
	// reputation agents based on its own experience" (§4.2.2).
	banned map[topology.NodeID]bool
}

// txCollect gathers one in-flight transaction's responses.
type txCollect struct {
	id         uint64
	requestor  topology.NodeID
	candidates []topology.NodeID
	expect     int
	responses  map[topology.NodeID][]trust.Value
	lastResp   simnet.Time
	start      simnet.Time
}

// listCollect gathers one in-flight agent-list request's responses.
type listCollect struct {
	id    uint64
	lists [][]Recommendation
}

// probeCollect gathers probe acknowledgements.
type probeCollect struct {
	acks map[topology.NodeID]bool
}

// System is a complete hiREP deployment over a simulated network.
type System struct {
	net    *simnet.Network
	oracle *trust.Oracle
	cfg    Config
	rng    *xrand.RNG
	wrng   *xrand.RNG // workload stream (requestor/candidate draws)
	crng   *xrand.RNG // churn stream (per-transaction offline draws)

	peers  []*peerState
	agents []*agentState // nil for nodes without agent capability

	seenListReq map[uint64]map[topology.NodeID]bool
	curTx       *txCollect
	curList     *listCollect
	curProbe    *probeCollect
	nextID      uint64
}

// NewSystem builds a hiREP system over net with ground truth from oracle.
// Roles (agent capability, honesty) are drawn from rng.
func NewSystem(net *simnet.Network, oracle *trust.Oracle, cfg Config, rng *xrand.RNG) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := net.Graph().N()
	if oracle.N() != n {
		return nil, fmt.Errorf("core: oracle has %d nodes, graph has %d", oracle.N(), n)
	}
	if cfg.OnionRelays > n-2 {
		return nil, fmt.Errorf("core: %d onion relays need more than %d nodes", cfg.OnionRelays, n)
	}
	s := &System{
		net:         net,
		oracle:      oracle,
		cfg:         cfg,
		rng:         rng.Split("hirep"),
		peers:       make([]*peerState, n),
		agents:      make([]*agentState, n),
		seenListReq: make(map[uint64]map[topology.NodeID]bool),
	}
	s.wrng = s.rng.Split("workload")
	s.crng = s.rng.Split("churn")
	roleRNG := s.rng.Split("roles")
	for i := 0; i < n; i++ {
		id := topology.NodeID(i)
		s.peers[i] = &peerState{
			id:       id,
			list:     newAgentList(cfg.TrustedAgents),
			rng:      s.rng.SplitN("peer", i),
			poisoner: cfg.PoisonFrac > 0 && roleRNG.Bool(cfg.PoisonFrac),
			banned:   make(map[topology.NodeID]bool),
		}
		s.peers[i].route = s.pickRelays(id, s.peers[i].rng)
		if roleRNG.Bool(cfg.AgentFrac) {
			s.agents[i] = &agentState{
				honest:      !roleRNG.Bool(cfg.MaliciousFrac),
				tallies:     make(map[topology.NodeID]tally),
				perReporter: make(map[topology.NodeID]map[topology.NodeID]tally),
				rng:         s.rng.SplitN("agent", i),
			}
		}
	}
	// Guarantee at least one honest and one agent overall so tiny test
	// networks remain usable.
	if s.AgentCount() == 0 {
		s.agents[0] = &agentState{
			honest:      true,
			tallies:     make(map[topology.NodeID]tally),
			perReporter: make(map[topology.NodeID]map[topology.NodeID]tally),
			rng:         s.rng.SplitN("agent", 0),
		}
	}
	for i := range s.peers {
		id := topology.NodeID(i)
		net.SetHandler(id, func(nw *simnet.Network, m simnet.Message) { s.dispatch(nw, m) })
	}
	return s, nil
}

// pickRelays draws OnionRelays distinct relays != self.
func (s *System) pickRelays(self topology.NodeID, rng *xrand.RNG) []topology.NodeID {
	n := s.net.Graph().N()
	route := make([]topology.NodeID, 0, s.cfg.OnionRelays)
	for _, idx := range rng.Choose(n-1, s.cfg.OnionRelays) {
		id := topology.NodeID(idx)
		if id >= self {
			id++ // skip self while keeping the draw uniform over others
		}
		route = append(route, id)
	}
	return route
}

// AgentCount returns how many nodes have agent capability.
func (s *System) AgentCount() int {
	c := 0
	for _, a := range s.agents {
		if a != nil {
			c++
		}
	}
	return c
}

// HonestAgentCount returns how many agents evaluate honestly.
func (s *System) HonestAgentCount() int {
	c := 0
	for _, a := range s.agents {
		if a != nil && a.honest {
			c++
		}
	}
	return c
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Net returns the underlying simulator (for counter snapshots in harnesses).
func (s *System) Net() *simnet.Network { return s.net }

// TrustedAgentsOf returns the current trusted-agent IDs of a peer.
func (s *System) TrustedAgentsOf(id topology.NodeID) []topology.NodeID {
	out := make([]topology.NodeID, 0, len(s.peers[id].list.entries))
	for _, e := range s.peers[id].list.entries {
		out = append(out, e.agent)
	}
	return out
}

// BackupCountOf returns the size of a peer's backup-agent cache.
func (s *System) BackupCountOf(id topology.NodeID) int {
	return len(s.peers[id].list.backups)
}

// AgentIDs returns every agent-capable node ID in ascending order.
func (s *System) AgentIDs() []topology.NodeID {
	var ids []topology.NodeID
	for i, a := range s.agents {
		if a != nil {
			ids = append(ids, topology.NodeID(i))
		}
	}
	return ids
}

// IsHonestAgent reports whether node id is an honest reputation agent.
func (s *System) IsHonestAgent(id topology.NodeID) bool {
	return s.agents[id] != nil && s.agents[id].honest
}

// IsAgent reports whether node id has reputation-agent capability.
func (s *System) IsAgent(id topology.NodeID) bool { return s.agents[id] != nil }

// KillAgents permanently disables frac of the currently honest agents with
// the highest exposure (most public-key registrations stand in for "high
// performance"), emulating the targeted DoS attack of §4.2.4. It returns the
// IDs taken down.
func (s *System) KillAgents(frac float64) []topology.NodeID {
	var honest []topology.NodeID
	for i, a := range s.agents {
		if a != nil && a.honest && !a.killed {
			honest = append(honest, topology.NodeID(i))
		}
	}
	kill := int(float64(len(honest)) * frac)
	victims := make([]topology.NodeID, 0, kill)
	kr := s.rng.Split("dos")
	for _, idx := range kr.Choose(len(honest), kill) {
		id := honest[idx]
		s.agents[id].killed = true
		victims = append(victims, id)
	}
	return victims
}

// ExpertiseOf returns a peer's expertise value for one of its trusted agents.
func (s *System) ExpertiseOf(peer, agent topology.NodeID) (float64, bool) {
	if e := s.peers[peer].list.find(agent); e != nil {
		return e.expertise.Value(), true
	}
	return 0, false
}

// Dispatch processes one simulator message addressed to this system's
// protocol. It is exported so callers can compose hiREP with other protocols
// (e.g. the gnutella query substrate) on the same network by installing a
// combined handler that routes by message kind.
func (s *System) Dispatch(nw *simnet.Network, m simnet.Message) { s.dispatch(nw, m) }

// dispatch routes a delivered message to its protocol handler, unwrapping
// onion envelopes.
func (s *System) dispatch(nw *simnet.Network, m simnet.Message) {
	if env, ok := m.Payload.(onionEnvelope); ok {
		if len(env.rest) > 0 {
			next := env.rest[0]
			fwd := onionEnvelope{rest: env.rest[1:], inner: env.inner, payloadSize: env.payloadSize}
			nw.SendKindBytes(m.To, next, m.KindID, fwd, onionHopSize(len(env.rest), env.payloadSize))
			return
		}
		m.Payload = env.inner
	}
	switch m.Kind {
	case KindAgentListReq:
		s.onListReq(nw, m)
	case KindAgentListResp:
		s.onListResp(m)
	case KindTrustReq:
		s.onTrustReq(nw, m)
	case KindTrustResp:
		s.onTrustResp(nw, m)
	case KindReport:
		s.onReport(m)
	case KindProbe:
		s.onProbe(nw, m)
	case KindProbeAck:
		s.onProbeAck(m)
	}
}

// onionSend launches a message along path (every element a hop, the last the
// destination). Each hop is one counted message.
func (s *System) onionSend(from topology.NodeID, kind simnet.Kind, path []topology.NodeID, inner any) {
	if len(path) == 0 {
		panic("core: empty onion path")
	}
	ps := s.payloadSize(inner)
	env := onionEnvelope{rest: path[1:], inner: inner, payloadSize: ps}
	s.net.SendKindBytes(from, path[0], kind, env, onionHopSize(len(path), ps))
}

// relaysOf returns a copy of dst's published onion relays (excluding dst);
// senders append dst to form the full delivery path.
func (s *System) relaysOf(dst topology.NodeID) []topology.NodeID {
	return append([]topology.NodeID(nil), s.peers[dst].route...)
}
