package core

import (
	"sort"

	"hirep/internal/topology"
	"hirep/internal/trust"
	"hirep/internal/xrand"
)

// Recommendation is one entry of a shared trusted-agent list: the agent's ID
// and the weight (expertise) the recommender assigns it (§3.4.1's
// {weight, agent nodeid, Onion_agent, SP_e} entry, reduced to the fields the
// ranking algorithm consumes).
type Recommendation struct {
	Agent  topology.NodeID
	Weight float64
}

// RankAgents implements §3.4.2: the requestor wants n agents. Within each
// received list, the agent with the greatest weight is ranked n, the second
// n-1, and so on; positions beyond the n-th rank 0. An agent recommended in
// several lists keeps its highest rank. The returned map carries each
// distinct agent's final rank.
//
// Ranking by per-list position rather than raw weight is what blunts
// bad-mouthing (§4.2.1): an attacker flooding low weights for a good agent
// cannot lower the agent's rank in honest lists, because only the maximum
// rank counts.
func RankAgents(lists [][]Recommendation, n int) map[topology.NodeID]int {
	ranks := make(map[topology.NodeID]int)
	for _, list := range lists {
		sorted := append([]Recommendation(nil), list...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Weight > sorted[j].Weight })
		for i, rec := range sorted {
			rank := n - i
			if rank < 0 {
				rank = 0
			}
			if rank > ranks[rec.Agent] {
				ranks[rec.Agent] = rank
			}
		}
	}
	return ranks
}

// SelectAgents picks up to n agents by descending rank, breaking ties
// randomly (§3.4.2: "If several agents have the same rank, requestor picks up
// its trusted agents from them randomly"). exclude removes a node (the
// requestor itself) from consideration.
func SelectAgents(ranks map[topology.NodeID]int, n int, exclude topology.NodeID, rng *xrand.RNG) []topology.NodeID {
	ids := make([]topology.NodeID, 0, len(ranks))
	for id := range ranks {
		if id != exclude {
			ids = append(ids, id)
		}
	}
	// Deterministic base order, then shuffle to randomize ties, then stable
	// sort by rank so equal-rank order stays random.
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	sort.SliceStable(ids, func(i, j int) bool { return ranks[ids[i]] > ranks[ids[j]] })
	if len(ids) > n {
		ids = ids[:n]
	}
	return ids
}

// agentEntry is one row of a peer's trusted-agent list.
type agentEntry struct {
	agent     topology.NodeID
	expertise *trust.Expertise
	route     []topology.NodeID // the agent's onion relays (agent last hop excluded)
}

// agentList is a peer's trusted-agent list plus the backup-agent cache of
// §3.4.3 (most-recently-demoted first).
type agentList struct {
	entries []*agentEntry
	backups []*agentEntry
	maxBack int
}

func newAgentList(maxBackups int) *agentList {
	return &agentList{maxBack: maxBackups}
}

// has reports whether agent is already a trusted agent.
func (l *agentList) has(agent topology.NodeID) bool {
	for _, e := range l.entries {
		if e.agent == agent {
			return true
		}
	}
	return false
}

// add appends a fresh entry with initial expertise 1 (§3.4.3). It is a no-op
// when the agent is already present.
func (l *agentList) add(agent topology.NodeID, route []topology.NodeID, alpha float64) {
	if l.has(agent) {
		return
	}
	exp, err := trust.NewExpertise(alpha)
	if err != nil {
		panic(err) // alpha validated by Config.Validate
	}
	l.entries = append(l.entries, &agentEntry{agent: agent, expertise: exp, route: route})
}

// backupEps is the floor below which an EWMA expertise counts as
// non-positive for §3.4.3's backup decision (the EWMA itself never reaches
// exactly zero).
const backupEps = 1e-6

// remove drops agent from the trusted list. When toBackup is true and the
// entry's expertise is positive, the entry moves to the front of the backup
// cache ("most recently first", §3.4.3); otherwise it is discarded.
func (l *agentList) remove(agent topology.NodeID, toBackup bool) {
	for i, e := range l.entries {
		if e.agent != agent {
			continue
		}
		l.entries = append(l.entries[:i], l.entries[i+1:]...)
		if toBackup && e.expertise.Value() > backupEps {
			l.backups = append([]*agentEntry{e}, l.backups...)
			if len(l.backups) > l.maxBack {
				l.backups = l.backups[:l.maxBack]
			}
		}
		return
	}
}

// restore moves a backup entry back into the trusted list (after a
// successful probe). It returns false if the agent is not in the backup
// cache.
func (l *agentList) restore(agent topology.NodeID) bool {
	for i, e := range l.backups {
		if e.agent != agent {
			continue
		}
		l.backups = append(l.backups[:i], l.backups[i+1:]...)
		l.entries = append(l.entries, e)
		return true
	}
	return false
}

// weights returns the list as recommendations for sharing with other peers.
func (l *agentList) weights() []Recommendation {
	out := make([]Recommendation, len(l.entries))
	for i, e := range l.entries {
		out[i] = Recommendation{Agent: e.agent, Weight: e.expertise.Value()}
	}
	return out
}

// find returns the entry for agent, or nil.
func (l *agentList) find(agent topology.NodeID) *agentEntry {
	for _, e := range l.entries {
		if e.agent == agent {
			return e
		}
	}
	return nil
}
