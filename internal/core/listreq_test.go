package core

import (
	"testing"

	"hirep/internal/topology"
)

// walkCost runs one agent-list walk and returns the messages spent.
func walkCost(t *testing.T, tokens, ttl int, seed int64) (reqs, resps int64) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Tokens = tokens
	cfg.TTL = ttl
	sys := buildSystem(t, 200, cfg, seed)
	before := sys.net.Count(KindAgentListReq)
	beforeResp := sys.net.Count(KindAgentListResp)
	sys.requestAgentLists(5)
	return sys.net.Count(KindAgentListReq) - before, sys.net.Count(KindAgentListResp) - beforeResp
}

func TestWalkResponsesBoundedByTokens(t *testing.T) {
	// §3.4.1: "A token was used up only when a node returns its trusted
	// agent list" — the token budget is a hard cap on answers.
	for _, tokens := range []int{1, 4, 10, 25} {
		_, resps := walkCost(t, tokens, 7, 9)
		if resps > int64(tokens) {
			t.Fatalf("tokens=%d produced %d responses", tokens, resps)
		}
	}
}

func TestWalkRequestsBoundedByTokensTimesTTL(t *testing.T) {
	// Each request message carries >= 1 token and tokens only move forward
	// (never duplicate), so per TTL ring at most `tokens` requests exist.
	for _, tokens := range []int{5, 10} {
		for _, ttl := range []int{2, 4, 7} {
			reqs, _ := walkCost(t, tokens, ttl, 13)
			bound := int64(tokens * ttl)
			if reqs > bound {
				t.Fatalf("tokens=%d ttl=%d: %d request messages exceed bound %d", tokens, ttl, reqs, bound)
			}
		}
	}
}

func TestWalkTTLOneNeverForwards(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TTL = 1
	sys := buildSystem(t, 150, cfg, 17)
	before := sys.net.Count(KindAgentListReq)
	sys.requestAgentLists(3)
	sent := sys.net.Count(KindAgentListReq) - before
	// With TTL 1, only the requestor's initial sends exist: at most
	// min(neighbors, tokens).
	deg := int64(len(sys.net.Graph().Neighbors(3)))
	maxInitial := int64(cfg.Tokens)
	if deg < maxInitial {
		maxInitial = deg
	}
	if sent > maxInitial {
		t.Fatalf("TTL-1 walk sent %d requests, max initial %d", sent, maxInitial)
	}
}

func TestWalkGrowsWithTokens(t *testing.T) {
	// More tokens buy more recommendation lists (until saturation).
	_, few := walkCost(t, 2, 7, 21)
	_, many := walkCost(t, 20, 7, 21)
	if many < few {
		t.Fatalf("more tokens produced fewer responses: %d vs %d", many, few)
	}
}

func TestPoisonerDoesNotSelfNominate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PoisonFrac = 1.0 // everyone poisons
	cfg.MaliciousFrac = 0.5
	sys := buildSystem(t, 150, cfg, 23)
	lists := sys.requestAgentLists(0)
	// All lists must consist solely of malicious agents at weight 1, or
	// self-nominations (when a poisoner found no malicious cohort yet).
	for _, list := range lists {
		for _, rec := range list {
			if sys.agents[rec.Agent] != nil && sys.agents[rec.Agent].honest && rec.Weight == 1 {
				// An honest self-nomination slipping through poisoned lists
				// is only possible via the self-nomination fallback.
				if len(list) != 1 || list[0].Agent != rec.Agent {
					t.Fatalf("poisoned list recommends honest agent %d", rec.Agent)
				}
			}
		}
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	a := buildSystem(t, 150, DefaultConfig(), 29)
	b := buildSystem(t, 150, DefaultConfig(), 29)
	if a.Bootstrap() != b.Bootstrap() {
		t.Fatal("bootstrap cost differs across identical runs")
	}
	for i := 0; i < 150; i++ {
		la, lb := a.TrustedAgentsOf(topology.NodeID(i)), b.TrustedAgentsOf(topology.NodeID(i))
		if len(la) != len(lb) {
			t.Fatalf("peer %d list size differs", i)
		}
		for j := range la {
			if la[j] != lb[j] {
				t.Fatalf("peer %d lists differ", i)
			}
		}
	}
}
