package core

import (
	"testing"
	"testing/quick"

	"hirep/internal/topology"
	"hirep/internal/xrand"
)

// genLists converts fuzzer input into recommendation lists.
func genLists(raw [][]uint16) [][]Recommendation {
	lists := make([][]Recommendation, 0, len(raw))
	for _, rl := range raw {
		var list []Recommendation
		for i, v := range rl {
			if i >= 12 {
				break
			}
			list = append(list, Recommendation{
				Agent:  topology.NodeID(v % 64),
				Weight: float64(v%100) / 100,
			})
		}
		if len(list) > 0 {
			lists = append(lists, list)
		}
	}
	return lists
}

func TestRankAgentsPropertyBounds(t *testing.T) {
	f := func(raw [][]uint16, nRaw uint8) bool {
		n := int(nRaw%10) + 1
		ranks := RankAgents(genLists(raw), n)
		for _, r := range ranks {
			if r < 0 || r > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRankAgentsPropertyMaxDominates(t *testing.T) {
	// Adding more lists can never LOWER an agent's final rank (max rule).
	f := func(raw [][]uint16, extraRaw []uint16, nRaw uint8) bool {
		n := int(nRaw%10) + 1
		lists := genLists(raw)
		before := RankAgents(lists, n)
		extra := genLists([][]uint16{extraRaw})
		after := RankAgents(append(lists, extra...), n)
		for agent, r := range before {
			if after[agent] < r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRankAgentsPropertyTopOfListGetsN(t *testing.T) {
	// The strictly heaviest agent of any list gets the full rank n.
	f := func(raw []uint16, nRaw uint8) bool {
		lists := genLists([][]uint16{raw})
		if len(lists) == 0 {
			return true
		}
		n := int(nRaw%10) + 1
		list := lists[0]
		best, bestW, ties := list[0].Agent, list[0].Weight, 1
		for _, rec := range list[1:] {
			switch {
			case rec.Weight > bestW:
				best, bestW, ties = rec.Agent, rec.Weight, 1
			case rec.Weight == bestW:
				ties++
			}
		}
		if ties > 1 {
			return true // ambiguous head; stable sort decides
		}
		return RankAgents(lists, n)[best] == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSelectAgentsPropertySubsetAndDistinct(t *testing.T) {
	f := func(raw [][]uint16, nRaw, seedRaw uint8) bool {
		n := int(nRaw%10) + 1
		ranks := RankAgents(genLists(raw), n)
		sel := SelectAgents(ranks, n, -1, xrand.New(int64(seedRaw)))
		if len(sel) > n {
			return false
		}
		seen := map[topology.NodeID]bool{}
		for _, id := range sel {
			if seen[id] {
				return false
			}
			seen[id] = true
			if _, ok := ranks[id]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSelectAgentsPropertyRankOrderRespected(t *testing.T) {
	// Every selected agent must have rank >= every unselected agent's rank.
	f := func(raw [][]uint16, seedRaw uint8) bool {
		const n = 4
		ranks := RankAgents(genLists(raw), n)
		sel := SelectAgents(ranks, n, -1, xrand.New(int64(seedRaw)))
		selSet := map[topology.NodeID]bool{}
		minSel := n + 1
		for _, id := range sel {
			selSet[id] = true
			if ranks[id] < minSel {
				minSel = ranks[id]
			}
		}
		if len(sel) < n {
			return true // everything was selected
		}
		for id, r := range ranks {
			if !selSet[id] && r > minSel {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
