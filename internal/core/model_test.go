package core

import (
	"testing"

	"hirep/internal/topology"
	"hirep/internal/trust"
	"hirep/internal/xrand"
)

func TestAgentModelString(t *testing.T) {
	if ModelTally.String() != "tally" || ModelRating.String() != "rating" || ModelCredibility.String() != "credibility" {
		t.Fatal("model names wrong")
	}
	if AgentModel(9).String() == "" {
		t.Fatal("unknown model renders empty")
	}
}

func TestConfigRejectsUnknownModel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Model = AgentModel(42)
	if cfg.Validate() == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestModelRatingIgnoresReports(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Model = ModelRating
	sys := buildSystem(t, 150, cfg, 21)
	sys.Bootstrap()
	req := topology.NodeID(1)
	for i := 0; i < 30; i++ {
		sys.RunTransaction(req, sys.PickCandidates(req))
	}
	// With ModelRating, an honest agent's evaluation is freshly drawn from
	// the rating ranges even for subjects it has many reports about.
	for id, a := range sys.agents {
		if a == nil || !a.honest {
			continue
		}
		for subject, tl := range a.tallies {
			if tl.pos+tl.neg < minReports {
				continue
			}
			v := sys.evaluate(a, subject)
			truth := sys.oracle.Trustworthy(int(subject))
			m := cfg.Rating
			if truth && (float64(v) < m.GoodLo || float64(v) >= m.GoodHi) {
				t.Fatalf("agent %d: rating-model value %v outside good range", id, v)
			}
			if !truth && (float64(v) < m.BadLo || float64(v) >= m.BadHi) {
				t.Fatalf("agent %d: rating-model value %v outside bad range", id, v)
			}
			return // one verified case suffices
		}
	}
	t.Skip("no agent accumulated enough reports")
}

// lyingReporterMSE measures trained MSE with lying reporters under a model.
func lyingReporterMSE(t *testing.T, model AgentModel) float64 {
	cfg := DefaultConfig()
	cfg.Model = model
	cfg.LyingReporters = true
	cfg.MaliciousFrac = 0.1
	sys := buildSystem(t, 250, cfg, 23)
	sys.Bootstrap()
	// Mixed requestor panel: trustworthy peers report honestly,
	// untrustworthy ones lie. Pick a panel with both kinds.
	panel := []topology.NodeID{}
	var liars int
	for i := 0; len(panel) < 8; i++ {
		id := topology.NodeID(i)
		if !sys.oracle.Trustworthy(i) {
			if liars >= 4 {
				continue
			}
			liars++
		}
		panel = append(panel, id)
	}
	// Concentrate transactions on a small provider pool so agents accumulate
	// enough reports for the report-based models to engage. The panel members
	// are providers too: honest reports about the liars' own (bad) service
	// are what lets the credibility model discount their testimony.
	pool := append([]topology.NodeID{30, 31, 32, 33, 34, 35, 36, 37}, panel...)
	rng := xrand.New(31)
	var acc trust.MSEAccumulator
	for i := 0; i < 240; i++ {
		req := panel[i%len(panel)]
		var cands []topology.NodeID
		for _, idx := range rng.Choose(len(pool), 3) {
			if pool[idx] != req {
				cands = append(cands, pool[idx])
			}
		}
		res := sys.RunTransaction(req, cands)
		if i >= 180 {
			for j, c := range res.Candidates {
				est := res.Estimates[j]
				if !est.Valid() {
					est = 0.5
				}
				acc.Observe(est, sys.oracle.TrueValue(int(c)))
			}
		}
	}
	return acc.MSE()
}

func TestCredibilityModelResistsLyingReporters(t *testing.T) {
	tally := lyingReporterMSE(t, ModelTally)
	cred := lyingReporterMSE(t, ModelCredibility)
	// The credibility weighting must not be worse than naive tallying under
	// report manipulation (§4.2.3); typically it is clearly better.
	if cred > tally*1.1 {
		t.Fatalf("credibility model (%.4f) worse than tally (%.4f) under lying reporters", cred, tally)
	}
	t.Logf("lying reporters: tally MSE %.4f, credibility MSE %.4f", tally, cred)
}

func TestLyingReportersPoisonTallies(t *testing.T) {
	// Sanity: with LyingReporters on and a liar-only panel, tallies about a
	// good provider collect negatives.
	cfg := DefaultConfig()
	cfg.LyingReporters = true
	sys := buildSystem(t, 150, cfg, 29)
	sys.Bootstrap()
	var liar topology.NodeID = -1
	for i := 0; i < 150; i++ {
		if !sys.oracle.Trustworthy(i) {
			liar = topology.NodeID(i)
			break
		}
	}
	if liar < 0 {
		t.Skip("no liar found")
	}
	res := sys.RunTransaction(liar, sys.PickCandidates(liar))
	// The report filed must be the inverse of the outcome.
	inverted := 0
	for _, a := range sys.agents {
		if a == nil {
			continue
		}
		if by, ok := a.perReporter[liar]; ok {
			tl := by[res.Chosen]
			if (res.Outcome && tl.neg > 0) || (!res.Outcome && tl.pos > 0) {
				inverted++
			}
		}
	}
	if inverted == 0 {
		t.Fatal("liar's reports were not inverted")
	}
}
