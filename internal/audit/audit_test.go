package audit

import (
	"bytes"
	"errors"
	"testing"

	"hirep/internal/agentdir"
	"hirep/internal/pkc"
	"hirep/internal/proof"
	"hirep/internal/repstore"
)

func ident(t testing.TB) *pkc.Identity {
	t.Helper()
	id, err := pkc.NewIdentity(nil)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func nonce(t testing.TB) pkc.Nonce {
	t.Helper()
	n, err := pkc.NewNonce(nil)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// lyingBundle builds a bundle whose published tally disagrees with its own
// evidence — the provable lie the advisory format exists to carry. The agent
// signature is valid; the content is the lie.
func lyingBundle(t testing.TB) (*proof.Bundle, *pkc.Identity) {
	t.Helper()
	agent := ident(t)
	st, _ := repstore.Open("", repstore.Options{EvidenceCap: 64})
	a := agentdir.NewWithStore(agent, 0, st)
	t.Cleanup(func() { a.Close() })
	subject := ident(t).ID
	reporter := ident(t)
	if err := a.RegisterKey(reporter.ID, reporter.Sign.Public); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		w := agentdir.SignReport(reporter, subject, i%2 == 0, nonce(t))
		if _, err := a.SubmitReport(reporter.ID, w); err != nil {
			t.Fatal(err)
		}
	}
	b := proof.AssembleUnsigned(st, subject, st.WALEpoch())
	b.Pos += 2
	b.Sign(agent)
	res, err := proof.Verify(b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != proof.Lying {
		t.Fatalf("tampered bundle verdict %v, want Lying", res.Verdict)
	}
	return b, agent
}

// matchingBundle builds an honest (empty) signed bundle: verifies Matching.
func matchingBundle(t testing.TB) (*proof.Bundle, *pkc.Identity) {
	t.Helper()
	agent := ident(t)
	b := &proof.Bundle{Subject: ident(t).ID, Epoch: 3}
	b.Sign(agent)
	return b, agent
}

func signedAdvisory(t testing.TB) (*Advisory, *pkc.Identity, *pkc.Identity) {
	t.Helper()
	b, agent := lyingBundle(t)
	auditor := ident(t)
	adv := &Advisory{
		Accused: b.AgentID(),
		Reason:  "tally mismatch",
		Issued:  1234,
		Bundle:  b.Encode(),
		Suspects: []SuspectReporter{
			{Reporter: ident(t).ID, Negative: 9, Total: 10},
		},
	}
	adv.Sign(auditor)
	return adv, agent, auditor
}

func TestAdvisoryRoundTrip(t *testing.T) {
	adv, agent, auditor := signedAdvisory(t)
	if adv.AuditorID() != auditor.ID {
		t.Fatal("AuditorID mismatch")
	}

	b, res, err := adv.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if res.Verdict != proof.Lying {
		t.Fatalf("receiver re-derived verdict %v, want Lying", res.Verdict)
	}
	if b.AgentID() != agent.ID {
		t.Fatal("embedded bundle convicts wrong agent")
	}

	enc := adv.Encode()
	dec, err := DecodeAdvisory(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Encode(), enc) {
		t.Fatal("advisory encoding not canonical")
	}
	if dec.Digest() != adv.Digest() {
		t.Fatal("digest not stable across decode")
	}
	if _, _, err := dec.Verify(); err != nil {
		t.Fatalf("decoded advisory fails Verify: %v", err)
	}
	if len(dec.Suspects) != 1 || dec.Suspects[0].Skew() != 0.9 {
		t.Fatalf("suspect metadata lost: %+v", dec.Suspects)
	}
}

// TestAdvisoryFraming: each way an advisory can fail to prove its accusation
// maps to the right typed error, and none of them verify — the framing
// resistance contract (nobody can convict an agent without a provable lie).
func TestAdvisoryFraming(t *testing.T) {
	auditor := ident(t)

	t.Run("unsigned", func(t *testing.T) {
		b, _ := lyingBundle(t)
		adv := &Advisory{Accused: b.AgentID(), Bundle: b.Encode()}
		if _, _, err := adv.Verify(); !errors.Is(err, ErrUnsigned) {
			t.Fatalf("err %v, want ErrUnsigned", err)
		}
	})

	t.Run("tampered-after-signing", func(t *testing.T) {
		adv, _, _ := signedAdvisory(t)
		adv.Reason = "edited accusation"
		if _, _, err := adv.Verify(); !errors.Is(err, ErrUnsigned) {
			t.Fatalf("err %v, want ErrUnsigned", err)
		}
	})

	t.Run("bare-accusation", func(t *testing.T) {
		adv := &Advisory{Accused: ident(t).ID, Bundle: []byte("not a bundle")}
		adv.Sign(auditor)
		if _, _, err := adv.Verify(); !errors.Is(err, ErrNoEvidence) {
			t.Fatalf("err %v, want ErrNoEvidence", err)
		}
	})

	t.Run("exonerating-bundle", func(t *testing.T) {
		b, agent := matchingBundle(t)
		adv := &Advisory{Accused: agent.ID, Bundle: b.Encode()}
		adv.Sign(auditor)
		if _, _, err := adv.Verify(); !errors.Is(err, ErrNotLying) {
			t.Fatalf("err %v, want ErrNotLying", err)
		}
	})

	t.Run("wrong-accused", func(t *testing.T) {
		b, _ := lyingBundle(t)
		framed := ident(t).ID // innocent bystander named in the accusation
		adv := &Advisory{Accused: framed, Bundle: b.Encode()}
		adv.Sign(auditor)
		if _, _, err := adv.Verify(); !errors.Is(err, ErrWrongAccused) {
			t.Fatalf("err %v, want ErrWrongAccused", err)
		}
	})
}

func TestDecodeAdvisoryBounds(t *testing.T) {
	adv, _, _ := signedAdvisory(t)

	long := make([]byte, maxReasonLen+1)
	for i := range long {
		long[i] = 'x'
	}
	adv.Reason = string(long)
	if _, err := DecodeAdvisory(adv.Encode()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized reason: err %v, want ErrCorrupt", err)
	}

	adv, _, _ = signedAdvisory(t)
	adv.Suspects = make([]SuspectReporter, maxSuspects+1)
	if _, err := DecodeAdvisory(adv.Encode()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized suspect list: err %v, want ErrCorrupt", err)
	}

	adv, _, _ = signedAdvisory(t)
	if _, err := DecodeAdvisory(append(adv.Encode(), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: err %v, want ErrCorrupt", err)
	}
	if _, err := DecodeAdvisory(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestSkewTable(t *testing.T) {
	tbl := NewSkewTable()
	slanderer := ident(t).ID
	honest := ident(t).ID
	quiet := ident(t).ID

	for i := 0; i < 10; i++ {
		tbl.Observe(slanderer, i == 0) // 9/10 negative
	}
	tbl.Add(honest, 2, 20) // 0.1 skew, bulk path
	tbl.Observe(quiet, false)

	sus := tbl.Suspects(8, 0.9)
	if len(sus) != 1 || sus[0].Reporter != slanderer {
		t.Fatalf("suspects %+v, want just the slanderer", sus)
	}
	if sus[0].Negative != 9 || sus[0].Total != 10 {
		t.Fatalf("tally %d/%d, want 9/10", sus[0].Negative, sus[0].Total)
	}
	// quiet is 100% negative but below the volume floor; honest is below skew.
	if got := tbl.Suspects(1, 0.95); len(got) != 1 || got[0].Reporter != quiet {
		t.Fatalf("volume floor off: %+v", got)
	}
}

func TestSkewTableObserveBundle(t *testing.T) {
	b, _ := lyingBundle(t) // evidence: 2 positive, 2 negative from one reporter
	tbl := NewSkewTable()
	tbl.ObserveBundle(b)
	sus := tbl.Suspects(1, 0.5)
	if len(sus) != 1 || sus[0].Total != 4 || sus[0].Negative != 2 {
		t.Fatalf("bundle fold: %+v, want one reporter at 2/4", sus)
	}
}
