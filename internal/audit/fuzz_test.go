package audit

import (
	"bytes"
	"testing"

	"hirep/internal/pkc"
	"hirep/internal/proof"
)

// fuzzIdent derives a deterministic identity for seed corpora (fuzz seeds
// must be stable across runs).
func fuzzIdent(tb testing.TB, b byte) *pkc.Identity {
	tb.Helper()
	seed := bytes.Repeat([]byte{b, b ^ 0x5a, ^b}, 512)
	id, err := pkc.NewIdentity(bytes.NewReader(seed))
	if err != nil {
		tb.Fatal(err)
	}
	return id
}

// FuzzDecodeAdvisory is the advisory codec contract: DecodeAdvisory either
// rejects the input or accepts it into an advisory whose re-encoding is
// byte-identical — the canonical form the gossip digest dedups by.
func FuzzDecodeAdvisory(f *testing.F) {
	auditor := fuzzIdent(f, 1)
	agent := fuzzIdent(f, 2)

	bundle := &proof.Bundle{Subject: fuzzIdent(f, 3).ID, Epoch: 7}
	bundle.Sign(agent)

	empty := &Advisory{Accused: agent.ID, Issued: 11, Bundle: bundle.Encode()}
	empty.Sign(auditor)
	f.Add(empty.Encode())

	full := &Advisory{
		Accused: agent.ID,
		Reason:  "published 5/1, evidence recomputes 3/1",
		Issued:  1700000000,
		Bundle:  bundle.Encode(),
		Suspects: []SuspectReporter{
			{Reporter: fuzzIdent(f, 4).ID, Negative: 9, Total: 10},
			{Reporter: fuzzIdent(f, 5).ID, Negative: 7, Total: 7},
		},
	}
	full.Sign(auditor)
	f.Add(full.Encode())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeAdvisory(data)
		if err != nil {
			return
		}
		if !bytes.Equal(a.Encode(), data) {
			t.Fatalf("accepted non-canonical advisory encoding: %x", data)
		}
	})
}
