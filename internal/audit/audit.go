// Package audit implements hiREP's self-healing trust plane (DESIGN.md §15).
//
// The proof subsystem (§14) made agent misbehavior detectable: a Lying
// verdict from proof.Verify is provable, attributable misbehavior by the
// agent key that signed the bundle. This package makes detection actionable.
// An auditor that catches a lying agent packages the offending bundle into a
// signed, self-contained advisory and gossips it to its peers; every receiver
// re-runs proof.Verify on the embedded bundle before acting, so an advisory
// transfers proof, not opinion — nobody can frame an agent with a bare
// accusation, and a fabricated advisory is rejected and counted, never acted
// on.
//
// The auditor loop itself (sweep scheduling, quarantine lifecycle, gossip)
// lives in internal/node; this package holds the pieces with no node
// dependency: the advisory format and its verification contract, plus the
// per-reporter negative-skew table behind slander detection.
package audit

import (
	"crypto/ed25519"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"

	"hirep/internal/agentdir"
	"hirep/internal/pkc"
	"hirep/internal/proof"
	"hirep/internal/wire"
)

// SigDomain is the domain-separation prefix of every signature this package
// produces.
const SigDomain = "hirep/audit/v1"

var advisorySigPrefix = []byte(SigDomain + "/advisory\x00")

// Errors returned by Verify. All of them mean the advisory must be discarded
// without acting on it; they differ in what (if anything) they say about the
// auditor that signed it.
var (
	// ErrUnsigned: the advisory is not authenticated by its auditor
	// signature. Transport corruption is indistinguishable from forgery, so
	// nothing is pinned on anyone.
	ErrUnsigned = errors.New("audit: advisory not authenticated by its auditor signature")
	// ErrNoEvidence: the advisory is authentic but its embedded bundle is
	// missing, malformed, or not agent-authenticated — the accusation carries
	// no proof. The signing auditor vouched for a bare accusation.
	ErrNoEvidence = errors.New("audit: advisory carries no verifiable proof bundle")
	// ErrNotLying: the embedded bundle verifies but its verdict is not Lying
	// — the "evidence" exonerates the accused.
	ErrNotLying = errors.New("audit: embedded bundle does not prove lying")
	// ErrWrongAccused: the bundle proves lying, but by a different agent key
	// than the advisory accuses.
	ErrWrongAccused = errors.New("audit: embedded bundle was signed by a different agent than accused")
	// ErrCorrupt: malformed advisory encoding.
	ErrCorrupt = errors.New("audit: malformed advisory encoding")
)

// Codec bounds. An advisory is gossiped inside one onion-inner frame, so the
// whole encoding must stay under wire.MaxFrame with sealing overhead; the
// individual bounds keep a hostile advisory from ballooning decode work.
const (
	maxReasonLen   = 512
	maxSuspects    = 32
	maxBundleBytes = wire.MaxFrame
)

// SuspectReporter is advisory metadata naming a reporter whose accepted
// reports at the audited agent skew heavily negative — the §3.6 slander
// heuristic. Unlike the accusation itself it is NOT proven by the advisory
// (the skew is the auditor's observation, not recomputable by receivers);
// consumers treat it as a hint to prioritize their own auditing, never as
// grounds for action.
type SuspectReporter struct {
	Reporter pkc.NodeID
	Negative uint64 // negative reports accepted from this reporter
	Total    uint64 // all reports accepted from this reporter
}

// Skew is the fraction of this reporter's accepted reports that is negative.
func (s SuspectReporter) Skew() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Negative) / float64(s.Total)
}

// Advisory is a signed, self-contained lying-agent accusation. The offending
// proof bundle rides inside, so a receiver needs nothing but the advisory
// bytes to re-derive the verdict.
type Advisory struct {
	// Accused is the node ID of the agent the bundle convicts. It is
	// redundant with the bundle's own AgentSP — Verify cross-checks them —
	// but naming it in the signed header lets receivers index and dedup
	// without decoding the bundle first.
	Accused pkc.NodeID
	// Reason is the proof.Result reason string of the auditor's own
	// verification, for logs; receivers recompute their own.
	Reason string
	// Issued is the auditor's wall-clock unix time at issuance, advisory
	// only (receivers do not enforce freshness — the proof inside does not
	// age: a signed lie stays a lie).
	Issued uint64
	// Bundle is the encoded offending proof bundle (proof.DecodeBundle).
	Bundle []byte
	// Suspects is optional slander metadata; see SuspectReporter.
	Suspects []SuspectReporter
	// AuditorSP / AuditorSig authenticate the advisory. The auditor stakes
	// its own identity on the accusation: a receiver that finds the embedded
	// bundle missing or exonerating has caught the *auditor* misbehaving.
	AuditorSP  []byte
	AuditorSig []byte
}

// AuditorID returns the node ID of the auditor that signed the advisory.
func (a *Advisory) AuditorID() pkc.NodeID { return pkc.DeriveNodeID(a.AuditorSP) }

// signedPart builds the byte string AuditorSig covers: the header plus a
// digest of the bundle, binding the accusation to exactly one bundle.
func (a *Advisory) signedPart() []byte {
	digest := sha256.Sum256(a.Bundle)
	var e wire.Encoder
	e.Bytes(advisorySigPrefix).Bytes(a.Accused[:]).String(a.Reason).U64(a.Issued)
	e.Bytes(digest[:])
	e.U64(uint64(len(a.Suspects)))
	for _, s := range a.Suspects {
		e.Bytes(s.Reporter[:]).U64(s.Negative).U64(s.Total)
	}
	return e.Encode()
}

// Sign attests the advisory as auditor.
func (a *Advisory) Sign(auditor *pkc.Identity) {
	a.AuditorSP = append([]byte(nil), auditor.Sign.Public...)
	a.AuditorSig = auditor.SignMessage(a.signedPart())
}

// Verify checks the advisory end to end: auditor signature, embedded bundle
// authenticity, re-derived Lying verdict, and accused-vs-signer match. On
// success it returns the decoded bundle and the receiver's own verification
// result, so callers act on what they verified rather than on what the
// advisory claims.
func (a *Advisory) Verify() (*proof.Bundle, proof.Result, error) {
	if len(a.AuditorSP) != ed25519.PublicKeySize ||
		!pkc.Verify(a.AuditorSP, a.signedPart(), a.AuditorSig) {
		return nil, proof.Result{}, ErrUnsigned
	}
	b, err := proof.DecodeBundle(a.Bundle)
	if err != nil {
		return nil, proof.Result{}, fmt.Errorf("%w: %v", ErrNoEvidence, err)
	}
	res, err := proof.Verify(b)
	if err != nil {
		return nil, proof.Result{}, fmt.Errorf("%w: %v", ErrNoEvidence, err)
	}
	if res.Verdict != proof.Lying {
		return nil, proof.Result{}, fmt.Errorf("%w: verdict %s", ErrNotLying, res.Verdict)
	}
	if b.AgentID() != a.Accused {
		return nil, proof.Result{}, ErrWrongAccused
	}
	return b, res, nil
}

// Encode serializes the advisory.
func (a *Advisory) Encode() []byte {
	var e wire.Encoder
	e.Bytes(a.Accused[:]).String(a.Reason).U64(a.Issued).Bytes(a.Bundle)
	e.U64(uint64(len(a.Suspects)))
	for _, s := range a.Suspects {
		e.Bytes(s.Reporter[:]).U64(s.Negative).U64(s.Total)
	}
	e.Bytes(a.AuditorSP).Bytes(a.AuditorSig)
	return e.Encode()
}

// Digest is a content hash of the canonical encoding, used by gossip to
// deduplicate re-broadcasts.
func (a *Advisory) Digest() [sha256.Size]byte { return sha256.Sum256(a.Encode()) }

// DecodeAdvisory parses an advisory. It enforces the codec bounds but does
// not authenticate anything — callers must Verify before acting.
func DecodeAdvisory(p []byte) (*Advisory, error) {
	d := wire.NewDecoder(p)
	a := &Advisory{}
	id := d.Bytes()
	if len(id) != pkc.NodeIDSize {
		return nil, fmt.Errorf("%w: bad accused id", ErrCorrupt)
	}
	copy(a.Accused[:], id)
	a.Reason = d.String()
	a.Issued = d.U64()
	a.Bundle = append([]byte(nil), d.Bytes()...)
	n := d.U64()
	if n > maxSuspects {
		return nil, fmt.Errorf("%w: %d suspects", ErrCorrupt, n)
	}
	if len(a.Reason) > maxReasonLen || len(a.Bundle) > maxBundleBytes {
		return nil, fmt.Errorf("%w: oversized field", ErrCorrupt)
	}
	if n > 0 {
		a.Suspects = make([]SuspectReporter, n)
		for i := range a.Suspects {
			rid := d.Bytes()
			if len(rid) != pkc.NodeIDSize {
				return nil, fmt.Errorf("%w: bad suspect id", ErrCorrupt)
			}
			copy(a.Suspects[i].Reporter[:], rid)
			a.Suspects[i].Negative = d.U64()
			a.Suspects[i].Total = d.U64()
		}
	}
	a.AuditorSP = append([]byte(nil), d.Bytes()...)
	a.AuditorSig = append([]byte(nil), d.Bytes()...)
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return a, nil
}

// SkewTable accumulates per-reporter report polarity observed during audits,
// feeding slander detection: a reporter whose accepted reports skew heavily
// negative across subjects is a slander suspect (ROADMAP item 3 groundwork).
// Not safe for concurrent use; the auditor owns one per sweep series.
type SkewTable struct {
	byReporter map[pkc.NodeID]*SuspectReporter
}

// NewSkewTable returns an empty table.
func NewSkewTable() *SkewTable {
	return &SkewTable{byReporter: make(map[pkc.NodeID]*SuspectReporter)}
}

// Observe records one report by reporter with the given polarity.
func (t *SkewTable) Observe(reporter pkc.NodeID, positive bool) {
	s := t.byReporter[reporter]
	if s == nil {
		s = &SuspectReporter{Reporter: reporter}
		t.byReporter[reporter] = s
	}
	s.Total++
	if !positive {
		s.Negative++
	}
}

// Add folds a pre-aggregated per-reporter tally into the table — the bulk
// path for agents that already keep admission counts (agentdir.Reporters).
func (t *SkewTable) Add(reporter pkc.NodeID, negative, total uint64) {
	s := t.byReporter[reporter]
	if s == nil {
		s = &SuspectReporter{Reporter: reporter}
		t.byReporter[reporter] = s
	}
	s.Total += total
	s.Negative += negative
}

// ObserveBundle folds every report in a bundle's evidence into the table.
// Callers pass bundles that already passed proof.Verify, so the wires are
// known-parseable; a malformed one is skipped defensively.
func (t *SkewTable) ObserveBundle(b *proof.Bundle) {
	for _, ev := range b.Evidence {
		if _, positive, _, _, _, err := agentdir.ParseReportWire(ev.Wire); err == nil {
			t.Observe(ev.Reporter, positive)
		}
	}
}

// Suspects returns reporters with at least minReports accepted reports and a
// negative fraction of at least minSkew, sorted by skew (then volume)
// descending and capped at the advisory metadata limit.
func (t *SkewTable) Suspects(minReports uint64, minSkew float64) []SuspectReporter {
	var out []SuspectReporter
	for _, s := range t.byReporter {
		if s.Total >= minReports && s.Skew() >= minSkew {
			out = append(out, *s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].Skew(), out[j].Skew()
		if si != sj {
			return si > sj
		}
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Reporter.String() < out[j].Reporter.String()
	})
	if len(out) > maxSuspects {
		out = out[:maxSuspects]
	}
	return out
}
