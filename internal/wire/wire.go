// Package wire is the framing and field codec of the live hiREP node
// prototype (the paper's future-work deployment target): length-prefixed
// frames over TCP, with a minimal deterministic field encoding.
//
// Frame layout:
//
//	u32 big-endian payload length | u8 message type | payload
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MsgType tags a frame's payload.
type MsgType byte

// Frame types of the hiREP node protocol.
const (
	// Relay anonymity-key handshake (Figure 3).
	TRelayRequest MsgType = 1 + iota
	TRelayResponse
	TKeyVerify
	TKeyConfirm
	// TOnion carries an onion blob plus an opaque end-to-end payload.
	TOnion
	// Inner payload types carried through onions.
	TTrustReq
	TTrustResp
	TReport
	// TKeyUpdate announces a §3.5 key rotation to an agent.
	TKeyUpdate
	// TAgentListReq / TAgentListResp carry the live agent-discovery walk
	// (the §3.4.1 trusted-agent list request over real links).
	TAgentListReq
	TAgentListResp
	// TPing / TPong probe a node's liveness (the §3.4.3 backup-agent probe).
	TPing
	TPong
	// THello / THelloAck negotiate a stream-multiplexed transport session on
	// a fresh connection (DESIGN.md §9). Both travel as plain frames so a
	// legacy one-shot peer can read (and reject) a hello, which is exactly
	// how the negotiation detects it.
	THello
	THelloAck
	// Agent-state replication (DESIGN.md §10). These travel as direct
	// frames between cooperating agents over the pooled transport — the
	// replication channel is infrastructure between machines that already
	// know each other's addresses, not part of the anonymous peer protocol.
	// RReplicate ships one signed, sequenced group-commit batch;
	// RReplicateAck returns the replica's applied position (and whether it
	// has diverged and needs repair).
	RReplicate
	RReplicateAck
	// RDigest / RDigestResp exchange per-shard CRC/version digests for
	// anti-entropy comparison.
	RDigest
	RDigestResp
	// RRepair streams one full shard export into a diverged replica; the
	// final (sentinel) repair frame seals the round at the primary's
	// sequence point. RRepairAck confirms application.
	RRepair
	RRepairAck
	// RFetch / RFetchResp let a promoted replica pull a shard from a
	// surviving replica (promotion-time anti-entropy when the primary is
	// gone).
	RFetch
	RFetchResp
	// TReplStatusReq / TReplStatusResp are onion-inner messages: a peer asks
	// a backup agent how caught-up its replica of a given primary is —
	// the probe stateful promotion (§3.4.3) rests on. The request can carry
	// a promote flag, instructing the replica to reconcile with surviving
	// replicas before serving.
	TReplStatusReq
	TReplStatusResp
	// TReportBatch / TReportBatchAck are onion-inner messages carrying the
	// batched, acknowledged report-ingest pipeline (DESIGN.md §11): a batch
	// packs many signed transaction reports into one frame, and the ack
	// returns a per-report status through the reporter's reply onion —
	// unlike the fire-and-forget TReport, rejected reports are visible to
	// the sender instead of vanishing.
	//
	// Both frames grew trailing-optional admission fields (DESIGN.md §13),
	// guarded by Decoder.More() for mixed-version compatibility: a batch may
	// end with a proof-of-work solution (pkc.VerifyAdmission) admitting the
	// reporter's identity, and an ack's signed part may end with the
	// difficulty the agent demands (so StatusAdmissionRequired bounces tell
	// the sender how much work to mint). Old decoders ignore the suffixes;
	// new decoders treat their absence as "no solution" / "no gate".
	TReportBatch
	TReportBatchAck
	// TPlacementReq / TPlacement exchange the overlay's signed placement map
	// (DESIGN.md §12): the request carries the asker's current epoch, the
	// response the full signed map. TPlacement also travels unsolicited —
	// an operator (or rebalance driver) pushes a new epoch to each node,
	// which adopts it if it is newer and signed by the node's pinned
	// placement authority; a node with no authority configured refuses
	// pushes outright (any valid keypair could sign one). Placement is
	// infrastructure metadata, like the replication frames: it names groups
	// and descriptors, never who reports on whom, so it travels as a direct
	// frame rather than through onions.
	TPlacementReq
	TPlacement
	// RHandoff / RHandoffResp drive a shard migration between agent groups
	// (the rebalance protocol, DESIGN.md §12): the new owner first seals the
	// shard at the old primary — which then rejects further writes for it
	// with a wrong-owner hint — and then pulls the sealed shard's export.
	// Signed and allowlisted exactly like the intra-group replication frames.
	RHandoff
	RHandoffResp
	// TProofReq / TProofResp are onion-inner messages of the verifiable-read
	// subsystem (DESIGN.md §14): the request asks an agent — or an untrusted
	// edge cache — for a subject's reputation as evidence rather than as a
	// bare tally; the response carries a self-verifying proof bundle or a
	// compact signed trust snapshot back through the requestor's reply
	// onion. Both end with trailing-optional fields guarded by
	// Decoder.More() (the §12/§13 convention), so mixed protocol revisions
	// keep interoperating.
	TProofReq
	TProofResp
	// TAdvisory is the onion-inner gossip frame of the audit subsystem
	// (DESIGN.md §15): a signed, self-contained audit advisory accusing an
	// agent of provable lying, with the offending proof bundle riding inside
	// so every receiver re-runs proof.Verify before acting. Pre-§15 nodes
	// drop the unknown inner type, so advisories degrade to no-ops rather
	// than errors on mixed fleets.
	TAdvisory
)

// NumMsgTypes is one past the highest assigned MsgType, for per-type
// counter arrays.
const NumMsgTypes = int(TAdvisory) + 1

func (t MsgType) String() string {
	switch t {
	case TRelayRequest:
		return "relay-request"
	case TRelayResponse:
		return "relay-response"
	case TKeyVerify:
		return "key-verify"
	case TKeyConfirm:
		return "key-confirm"
	case TOnion:
		return "onion"
	case TTrustReq:
		return "trust-req"
	case TTrustResp:
		return "trust-resp"
	case TReport:
		return "report"
	case TKeyUpdate:
		return "key-update"
	case TAgentListReq:
		return "agent-list-req"
	case TAgentListResp:
		return "agent-list-resp"
	case TPing:
		return "ping"
	case TPong:
		return "pong"
	case THello:
		return "hello"
	case THelloAck:
		return "hello-ack"
	case RReplicate:
		return "repl-batch"
	case RReplicateAck:
		return "repl-batch-ack"
	case RDigest:
		return "repl-digest"
	case RDigestResp:
		return "repl-digest-resp"
	case RRepair:
		return "repl-repair"
	case RRepairAck:
		return "repl-repair-ack"
	case RFetch:
		return "repl-fetch"
	case RFetchResp:
		return "repl-fetch-resp"
	case TReplStatusReq:
		return "repl-status-req"
	case TReplStatusResp:
		return "repl-status-resp"
	case TReportBatch:
		return "report-batch"
	case TReportBatchAck:
		return "report-batch-ack"
	case TPlacementReq:
		return "placement-req"
	case TPlacement:
		return "placement"
	case RHandoff:
		return "shard-handoff"
	case RHandoffResp:
		return "shard-handoff-resp"
	case TProofReq:
		return "proof-req"
	case TProofResp:
		return "proof-resp"
	case TAdvisory:
		return "audit-advisory"
	default:
		return fmt.Sprintf("MsgType(%d)", byte(t))
	}
}

// MaxFrame bounds accepted frame sizes; onions over ~30 hops stay far below.
const MaxFrame = 1 << 20

// Errors returned by the codec.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrShortField    = errors.New("wire: truncated field")
	ErrTrailingData  = errors.New("wire: trailing bytes after last field")
)

// WriteFrame writes one frame.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return ErrFrameTooLarge
	}
	hdr := make([]byte, 5)
	binary.BigEndian.PutUint32(hdr, uint32(len(payload)+1))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: write payload: %w", err)
	}
	return nil
}

// ReadFrame reads one frame.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("wire: read header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 1 || n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: read payload: %w", err)
	}
	return MsgType(hdr[4]), payload, nil
}

// Encoder appends length-delimited fields to a buffer.
type Encoder struct{ buf []byte }

// Bytes appends a u32-length-prefixed byte field.
func (e *Encoder) Bytes(b []byte) *Encoder {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(b)))
	e.buf = append(e.buf, l[:]...)
	e.buf = append(e.buf, b...)
	return e
}

// String appends a string field.
func (e *Encoder) String(s string) *Encoder { return e.Bytes([]byte(s)) }

// U64 appends a fixed 8-byte unsigned integer.
func (e *Encoder) U64(v uint64) *Encoder {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
	return e
}

// Bool appends one byte.
func (e *Encoder) Bool(v bool) *Encoder {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
	return e
}

// Encode returns the accumulated buffer.
func (e *Encoder) Encode() []byte { return e.buf }

// Decoder consumes fields written by Encoder. The first error sticks; check
// Err after reading all fields.
type Decoder struct {
	buf []byte
	err error
}

// NewDecoder wraps a payload.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Bytes reads a length-prefixed byte field.
func (d *Decoder) Bytes() []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < 4 {
		d.err = ErrShortField
		return nil
	}
	n := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	if uint32(len(d.buf)) < n {
		d.err = ErrShortField
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

// String reads a string field.
func (d *Decoder) String() string { return string(d.Bytes()) }

// U64 reads a fixed 8-byte unsigned integer.
func (d *Decoder) U64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.err = ErrShortField
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

// Bool reads one byte.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.buf) < 1 {
		d.err = ErrShortField
		return false
	}
	v := d.buf[0] != 0
	d.buf = d.buf[1:]
	return v
}

// More reports whether unread bytes remain and no decode error has occurred.
// It is how decoders read trailing-optional fields: a field appended to a
// message in a later protocol revision is decoded only when present, so both
// directions of a mixed-version exchange still parse.
func (d *Decoder) More() bool { return d.err == nil && len(d.buf) > 0 }

// Err returns the first decode error, or ErrTrailingData if bytes remain
// after Finish was called.
func (d *Decoder) Err() error { return d.err }

// Finish asserts the payload was fully consumed.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		d.err = ErrTrailingData
	}
	return d.err
}
