package wire

import (
	"bytes"
	"testing"
)

// FuzzReadFrame hardens the framing layer against hostile byte streams: it
// must never panic or over-allocate, and everything it accepts must
// round-trip.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteFrame(&seed, TOnion, []byte("payload"))
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	f.Add([]byte{0, 0, 0, 1, 5, 42})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			t.Fatalf("accepted frame cannot be rewritten: %v", err)
		}
		typ2, payload2, err := ReadFrame(&buf)
		if err != nil || typ2 != typ || !bytes.Equal(payload2, payload) {
			t.Fatalf("round trip broke: %v", err)
		}
	})
}

// FuzzSessionFrames hardens the stream-framed session decoder against
// hostile byte streams — torn frames, oversized length prefixes, and
// interleaved valid/invalid frames. Every frame accepted before the first
// error must round-trip exactly, and the reader must never panic or
// over-allocate.
func FuzzSessionFrames(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteStreamFrame(&seed, TTrustReq, 1, []byte("first"))
	_ = WriteStreamFrame(&seed, TTrustResp, 2, []byte("second, interleaved"))
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:seed.Len()-4]) // torn tail
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 5, 0, 0, 0, 1})
	f.Add([]byte{0, 0, 0, 3, 5, 0, 0}) // length too small for a stream id
	f.Add(EncodeHello(Hello{Version: SessionVersion, MaxStreams: 64}))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			typ, stream, payload, err := ReadStreamFrame(r)
			if err != nil {
				return
			}
			var buf bytes.Buffer
			if err := WriteStreamFrame(&buf, typ, stream, payload); err != nil {
				t.Fatalf("accepted frame cannot be rewritten: %v", err)
			}
			typ2, stream2, payload2, err := ReadStreamFrame(&buf)
			if err != nil || typ2 != typ || stream2 != stream || !bytes.Equal(payload2, payload) {
				t.Fatalf("stream frame round trip broke: %v", err)
			}
		}
	})
}

// FuzzDecoder hardens the field codec: arbitrary bytes must decode without
// panic, and the sticky error must fire before any out-of-bounds access.
func FuzzDecoder(f *testing.F) {
	var e Encoder
	e.Bytes([]byte("ab")).String("cd").U64(7).Bool(true)
	f.Add(e.Encode())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		_ = d.Bytes()
		_ = d.String()
		_ = d.U64()
		_ = d.Bool()
		_ = d.Finish()
	})
}
