package wire

import (
	"bytes"
	"testing"
)

// FuzzReadFrame hardens the framing layer against hostile byte streams: it
// must never panic or over-allocate, and everything it accepts must
// round-trip.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteFrame(&seed, TOnion, []byte("payload"))
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	f.Add([]byte{0, 0, 0, 1, 5, 42})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			t.Fatalf("accepted frame cannot be rewritten: %v", err)
		}
		typ2, payload2, err := ReadFrame(&buf)
		if err != nil || typ2 != typ || !bytes.Equal(payload2, payload) {
			t.Fatalf("round trip broke: %v", err)
		}
	})
}

// FuzzDecoder hardens the field codec: arbitrary bytes must decode without
// panic, and the sticky error must fire before any out-of-bounds access.
func FuzzDecoder(f *testing.F) {
	var e Encoder
	e.Bytes([]byte("ab")).String("cd").U64(7).Bool(true)
	f.Add(e.Encode())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		_ = d.Bytes()
		_ = d.String()
		_ = d.U64()
		_ = d.Bool()
		_ = d.Finish()
	})
}
