package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// This file is the session-mode extension of the frame codec (DESIGN.md §9):
// after a THello/THelloAck exchange, a connection carries stream-multiplexed
// frames so many in-flight request/response pairs can share it. A stream
// frame inserts a u32 stream id between the message type and the payload:
//
//	u32 big-endian length | u8 message type | u32 stream id | payload
//
// where length covers type + stream id + payload. Responses echo the
// request's stream id, so they may arrive in any order.

// SessionVersion is the current session-protocol version carried in hellos.
// A responder acks with min(its version, the requestor's); version 1 is the
// only one defined.
const SessionVersion = 1

// helloMagic guards against a non-hiREP speaker landing on the port: a hello
// whose payload does not start with it is rejected outright.
var helloMagic = [4]byte{'H', 'R', 'T', 'P'}

// Errors of the session codec.
var (
	ErrBadHello = errors.New("wire: malformed session hello")
)

// Hello is the session-negotiation payload carried by THello and THelloAck.
type Hello struct {
	// Version is the sender's session-protocol version.
	Version uint8
	// MaxStreams is the in-flight stream window the sender is willing to
	// serve on this connection; the peer must not exceed it.
	MaxStreams uint32
}

// EncodeHello serializes a hello payload.
func EncodeHello(h Hello) []byte {
	b := make([]byte, 0, 9)
	b = append(b, helloMagic[:]...)
	b = append(b, h.Version)
	var ms [4]byte
	binary.BigEndian.PutUint32(ms[:], h.MaxStreams)
	return append(b, ms[:]...)
}

// DecodeHello parses a hello payload.
func DecodeHello(b []byte) (Hello, error) {
	if len(b) != 9 || [4]byte(b[:4]) != helloMagic {
		return Hello{}, ErrBadHello
	}
	h := Hello{Version: b[4], MaxStreams: binary.BigEndian.Uint32(b[5:9])}
	if h.Version == 0 {
		return Hello{}, ErrBadHello
	}
	return h, nil
}

// streamHdrSize is the per-frame overhead of a stream frame: u32 length,
// u8 type, u32 stream id.
const streamHdrSize = 9

// AppendStreamFrame appends one encoded stream frame to dst and returns the
// extended slice, so a writer can reuse one buffer and issue a single
// Write per frame.
func AppendStreamFrame(dst []byte, t MsgType, stream uint32, payload []byte) ([]byte, error) {
	if len(payload)+streamHdrSize-4 > MaxFrame {
		return dst, ErrFrameTooLarge
	}
	var hdr [streamHdrSize]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+5))
	hdr[4] = byte(t)
	binary.BigEndian.PutUint32(hdr[5:], stream)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// WriteStreamFrame writes one stream frame as a single Write call.
func WriteStreamFrame(w io.Writer, t MsgType, stream uint32, payload []byte) error {
	buf, err := AppendStreamFrame(nil, t, stream, payload)
	if err != nil {
		return err
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("wire: write stream frame: %w", err)
	}
	return nil
}

// ReadStreamFrame reads one stream frame.
func ReadStreamFrame(r io.Reader) (MsgType, uint32, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, fmt.Errorf("wire: read stream header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 5 || n > MaxFrame {
		return 0, 0, nil, ErrFrameTooLarge
	}
	body := make([]byte, n-1)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, 0, nil, fmt.Errorf("wire: read stream body: %w", err)
	}
	return MsgType(hdr[4]), binary.BigEndian.Uint32(body[:4]), body[4:], nil
}
