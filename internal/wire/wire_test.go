package wire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 1000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, TOnion, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range payloads {
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != TOnion || !bytes.Equal(got, p) {
			t.Fatalf("frame corrupted: %v %q != %q", typ, got, p)
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TOnion, make([]byte, MaxFrame)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write: %v", err)
	}
	// A forged oversized header must be rejected before allocation.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF, byte(TOnion)}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized read: %v", err)
	}
}

func TestFrameZeroLengthRejected(t *testing.T) {
	hdr := []byte{0, 0, 0, 0, 0}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("zero-length frame accepted (no type byte)")
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, TReport, []byte("full payload"))
	data := buf.Bytes()
	for _, n := range []int{0, 3, 5, 8} {
		if _, _, err := ReadFrame(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("truncated frame of %d bytes accepted", n)
		}
	}
}

func TestFrameOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		typ, payload, err := ReadFrame(conn)
		if err != nil {
			done <- err
			return
		}
		done <- WriteFrame(conn, typ, payload)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	want := []byte("echo me")
	if err := WriteFrame(conn, TTrustReq, want); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != TTrustReq || !bytes.Equal(got, want) {
		t.Fatalf("echo mismatch: %v %q", typ, got)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestEncoderDecoderRoundTrip(t *testing.T) {
	var e Encoder
	e.Bytes([]byte("hello")).String("world").U64(12345678901234).Bool(true).Bool(false)
	d := NewDecoder(e.Encode())
	if got := d.Bytes(); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("bytes %q", got)
	}
	if got := d.String(); got != "world" {
		t.Fatalf("string %q", got)
	}
	if got := d.U64(); got != 12345678901234 {
		t.Fatalf("u64 %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bools wrong")
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderTruncation(t *testing.T) {
	var e Encoder
	e.String("field").U64(7)
	full := e.Encode()
	for n := 0; n < len(full); n++ {
		d := NewDecoder(full[:n])
		d.Bytes()
		d.U64()
		if d.Finish() == nil {
			t.Fatalf("truncation at %d undetected", n)
		}
	}
}

func TestDecoderTrailingData(t *testing.T) {
	var e Encoder
	e.U64(1)
	d := NewDecoder(append(e.Encode(), 0xFF))
	d.U64()
	if err := d.Finish(); !errors.Is(err, ErrTrailingData) {
		t.Fatalf("trailing byte outcome: %v", err)
	}
}

func TestDecoderErrorSticks(t *testing.T) {
	d := NewDecoder([]byte{0, 0})
	d.U64() // fails
	if d.Err() == nil {
		t.Fatal("error not recorded")
	}
	// Subsequent reads return zero values, not panics.
	if d.Bytes() != nil || d.U64() != 0 || d.Bool() || d.String() != "" {
		t.Fatal("post-error reads not zeroed")
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	f := func(a []byte, s string, v uint64, b bool) bool {
		var e Encoder
		e.Bytes(a).String(s).U64(v).Bool(b)
		d := NewDecoder(e.Encode())
		ga := d.Bytes()
		gs := d.String()
		gv := d.U64()
		gb := d.Bool()
		return d.Finish() == nil && bytes.Equal(ga, a) && gs == s && gv == v && gb == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for _, typ := range []MsgType{TRelayRequest, TRelayResponse, TKeyVerify, TKeyConfirm, TOnion, TTrustReq, TTrustResp, TReport} {
		if typ.String() == "" {
			t.Fatalf("type %d has empty string", typ)
		}
	}
	if MsgType(200).String() == "" {
		t.Fatal("unknown type renders empty")
	}
}

func TestReadFrameEOF(t *testing.T) {
	if _, _, err := ReadFrame(bytes.NewReader(nil)); !errors.Is(err, io.EOF) && err == nil {
		t.Fatal("EOF not surfaced")
	}
}
