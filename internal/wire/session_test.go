package wire

import (
	"bytes"
	"strings"
	"testing"
)

func TestStreamFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []struct {
		typ     MsgType
		stream  uint32
		payload string
	}{
		{TPing, 0, ""},
		{TOnion, 1, "onion bytes"},
		{TTrustResp, 0xFFFFFFFF, "max stream id"},
		{TPong, 7, strings.Repeat("x", 4096)},
	}
	for _, f := range frames {
		if err := WriteStreamFrame(&buf, f.typ, f.stream, []byte(f.payload)); err != nil {
			t.Fatal(err)
		}
	}
	for i, f := range frames {
		typ, stream, payload, err := ReadStreamFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != f.typ || stream != f.stream || string(payload) != f.payload {
			t.Fatalf("frame %d: got (%v, %d, %q)", i, typ, stream, payload)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d trailing bytes", buf.Len())
	}
}

func TestStreamFrameTornAndOversized(t *testing.T) {
	// Torn mid-body: must error, not block or panic.
	var buf bytes.Buffer
	if err := WriteStreamFrame(&buf, TPing, 3, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	torn := buf.Bytes()[:buf.Len()-3]
	if _, _, _, err := ReadStreamFrame(bytes.NewReader(torn)); err == nil {
		t.Fatal("torn frame accepted")
	}
	// Oversized length prefix: rejected before allocation.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF, byte(TPing), 0, 0, 0, 1}
	if _, _, _, err := ReadStreamFrame(bytes.NewReader(huge)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Length too small to hold a stream id.
	small := []byte{0, 0, 0, 3, byte(TPing), 0, 0}
	if _, _, _, err := ReadStreamFrame(bytes.NewReader(small)); err == nil {
		t.Fatal("undersized frame accepted")
	}
	// Writer refuses payloads that would exceed MaxFrame.
	if err := WriteStreamFrame(&buf, TPing, 0, make([]byte, MaxFrame)); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestAppendStreamFrameReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 64)
	out, err := AppendStreamFrame(buf, TPong, 9, []byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &buf[:1][0] {
		t.Fatal("append did not reuse the buffer")
	}
	typ, stream, payload, err := ReadStreamFrame(bytes.NewReader(out))
	if err != nil || typ != TPong || stream != 9 || string(payload) != "abc" {
		t.Fatalf("got (%v, %d, %q, %v)", typ, stream, payload, err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{Version: SessionVersion, MaxStreams: 128}
	got, err := DecodeHello(EncodeHello(h))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("got %+v, want %+v", got, h)
	}
}

func TestHelloRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("XXXX\x01\x00\x00\x00\x10"), // wrong magic
		[]byte{'H', 'R', 'T', 'P', 0, 0, 0, 0, 16},   // version 0
		append(EncodeHello(Hello{Version: 1}), 0xAA), // trailing byte
	}
	for i, c := range cases {
		if _, err := DecodeHello(c); err == nil {
			t.Fatalf("case %d: garbage hello accepted", i)
		}
	}
}
